"""Telemetry neutrality: metering and profiling never move a number.

The telemetry layer's core contract (mirroring the tracer's): attaching
the metrics hub and the sampling profiler must not change a single byte
of the ``ExperimentResult``.  Pinned against the same golden digests the
fast-path tests use, for all four canonical scenarios.

Also pins the acceptance criteria of the metered+profiled run itself:
the OpenMetrics exposition parses, the registry agrees with the kernel's
own accounting, and the profiler's folded per-track totals sum to the
accounted softirq time within 0.1%.
"""

from __future__ import annotations

import pytest

from repro.bench.experiment import (
    TelemetryOptions,
    run_experiment,
    run_instrumented_experiment,
)
from repro.bench.runner import result_digest
from tests.test_fastpath_golden import GOLD, SCENARIOS


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_metered_profiled_run_is_digest_identical(scenario):
    """Metered+profiled == unmetered, byte for byte (minus the snapshot,
    stripped the same way traced runs strip stage_breakdown)."""
    config, untraced, _ = GOLD[scenario]
    instrumented = run_instrumented_experiment(config)
    assert instrumented.result.telemetry is not None
    stripped = instrumented.result
    stripped.telemetry = None
    assert result_digest(stripped) == untraced


def test_metered_unprofiled_run_is_digest_identical():
    """Metering alone (no profiler => untraced fast lanes) is neutral."""
    config, untraced, _ = GOLD["overlay-vanilla"]
    instrumented = run_instrumented_experiment(
        config, TelemetryOptions(profile=False))
    assert instrumented.profiler is None
    stripped = instrumented.result
    stripped.telemetry = None
    assert result_digest(stripped) == untraced


def test_instrumented_runs_are_reproducible():
    """Two metered runs produce identical snapshots and expositions."""
    config, _, _ = GOLD["overlay-vanilla"]
    a = run_instrumented_experiment(config)
    b = run_instrumented_experiment(config)
    assert a.result.telemetry == b.result.telemetry
    assert (a.telemetry.registry.render_openmetrics()
            == b.telemetry.registry.render_openmetrics())


class TestInstrumentedRunContents:
    """One metered+profiled canonical cell, checked in depth."""

    @pytest.fixture(scope="class")
    def instrumented(self):
        config, _, _ = GOLD["overlay-vanilla"]
        return run_instrumented_experiment(config)

    def test_registry_agrees_with_kernel_accounting(self, instrumented):
        kernel = instrumented.telemetry.kernel
        metrics = instrumented.result.telemetry["metrics"]

        def series(name):
            return {tuple(sorted(s["labels"].items())): s["value"]
                    for s in metrics[name]["samples"]}

        # Scraped CPU time matches CpuStats exactly.
        cpu_ns = series("repro_cpu_time_ns")
        for core in kernel.cpus:
            for context, ns in core.stats.ns.items():
                key = (("context", context.value),
                       ("cpu", str(core.core_id)))
                assert cpu_ns[key] == ns
        # Scraped drops match kernel.drops exactly.
        drops = series("repro_drops")
        assert drops == {(("queue", q),): n
                         for q, n in kernel.drops.items()}

    def test_live_poll_counters_cover_delivered_traffic(self, instrumented):
        metrics = instrumented.result.telemetry["metrics"]
        polls = {s["labels"]["napi"]: s["value"]
                 for s in metrics["repro_napi_polls"]["samples"]}
        packets = {s["labels"]["napi"]: s["value"]
                   for s in metrics["repro_napi_packets"]["samples"]}
        assert polls.get("eth", 0) > 0, "NIC NAPI never counted a poll"
        # Every NAPI that polled processed at least as many packets.
        for napi, n in polls.items():
            assert packets.get(napi, 0) >= n or packets.get(napi, 0) == 0
        # Batch-size histogram totals agree with the packet counters.
        for sample in metrics["repro_napi_batch_size"]["samples"]:
            napi = sample["labels"]["napi"]
            assert sample["sum"] == packets[napi]
            assert sample["count"] == polls[napi]

    def test_openmetrics_exposition_is_valid(self, instrumented):
        text = instrumented.telemetry.render_openmetrics()
        lines = text.splitlines()
        assert lines[-1] == "# EOF"
        assert text.endswith("# EOF\n")
        seen_types = {}
        for line in lines[:-1]:
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ")
                assert name not in seen_types, "duplicate TYPE"
                seen_types[name] = kind
                assert kind in ("counter", "gauge", "histogram")
            elif line.startswith("# HELP "):
                continue
            else:
                # Sample line: name{labels} value — value parses numeric.
                head, _, value = line.rpartition(" ")
                float(value)
                assert head, f"malformed sample line {line!r}"
        # Counters expose only under the _total suffix (a family with no
        # children legitimately renders metadata and zero samples).
        counter_names = [n for n, k in seen_types.items()
                         if k == "counter"]
        assert counter_names
        for name in counter_names:
            bare = [line for line in lines
                    if line.startswith((f"{name} ", f"{name}{{"))]
            assert not bare, f"{name}: counter sample without _total"
        assert any(line.startswith("repro_softirq_invocations_total")
                   for line in lines)

    def test_folded_totals_match_softirq_time_within_tolerance(
            self, instrumented):
        """Acceptance criterion: per-stage folded totals sum to the
        accounted simulated softirq CPU time within 0.1%."""
        profiler = instrumented.profiler
        kernel = instrumented.telemetry.kernel
        for core in kernel.cpus:
            softirq_ns = core.stats.softirq_ns
            track_ns = profiler.total_ns(f"cpu{core.core_id}")
            if softirq_ns == 0:
                assert track_ns == 0
                continue
            assert abs(track_ns - softirq_ns) <= max(1, softirq_ns // 1000)

    def test_folded_export_is_parseable(self, instrumented):
        for line in instrumented.profiler.folded():
            frames, _, ns = line.rpartition(" ")
            assert int(ns) > 0
            assert frames.split(";")[0].startswith("cpu")

    def test_profiler_separates_priority_classes(self, instrumented):
        """The hp/lp flow-priority dimension reaches the flamegraph."""
        leaves = instrumented.profiler.stage_totals()
        assert any(name.endswith("[lp]") for name in leaves), leaves

    def test_harness_meters_export_through_registry(self, instrumented):
        """Satellite: CpuUtilizationSampler + ThroughputMeter gauges ride
        the one registry — values equal the result's own fields."""
        result = instrumented.result
        metrics = result.telemetry["metrics"]
        util = {s["labels"]["cpu"]: s["value"]
                for s in metrics["repro_cpu_utilization"]["samples"]}
        assert util["cpu0"] == pytest.approx(result.cpu_utilization)
        frac = {s["labels"]["cpu"]: s["value"]
                for s in metrics["repro_cpu_softirq_fraction"]["samples"]}
        assert frac["cpu0"] == pytest.approx(result.softirq_fraction)
        meters = {s["labels"]["meter"]: s["value"]
                  for s in metrics["repro_meter_events"]["samples"]}
        fg_meter = "sockperf-server:11111"
        window = result.config.duration_ns
        assert meters[fg_meter] * 1e9 / window == pytest.approx(
            result.fg_delivered_pps)

    def test_snapshot_round_trips_through_result_serialization(
            self, instrumented):
        from repro.bench.experiment import ExperimentResult

        clone = ExperimentResult.from_dict(instrumented.result.to_dict())
        assert clone.telemetry == instrumented.result.telemetry
        assert result_digest(clone) == result_digest(instrumented.result)
