"""Failure-injection tests: queue overflows at every pipeline layer.

The kernel's answer to overload is tail drops at bounded queues; these
tests force each queue to its limit and verify drops are confined to the
right layer and properly accounted (no packets vanish silently).
"""

import pytest

from repro.apps.remote import RemoteRequestSender
from repro.bench.testbed import build_testbed
from repro.kernel.config import KernelConfig
from repro.prism.mode import StackMode
from repro.sim.units import MS


def overlay_env(mode=StackMode.VANILLA, config=None):
    testbed = build_testbed(mode=mode, config=config)
    server = testbed.add_server_container("srv", "10.0.0.10")
    client = testbed.add_client_container("cli", "10.0.0.100")
    socket = server.udp_socket(5000, core_id=1)
    sender = RemoteRequestSender(testbed.client, testbed.overlay,
                                 client, "10.0.0.10")
    return testbed, socket, sender


class TestRingOverflow:
    def test_burst_beyond_ring_capacity_drops_exactly_the_excess(self):
        config = KernelConfig(rx_ring_capacity=128)
        testbed, socket, sender = overlay_env(config=config)
        for _ in range(200):
            sender.send_udp(src_port=40000, dst_port=5000,
                            payload=None, payload_len=32)
        testbed.sim.run(until=20 * MS)
        drops = testbed.server.kernel.drops.get("eth:ring", 0)
        # The softirq starts draining the ring while the burst is still
        # arriving on the wire, so some of the overflow gets through —
        # but delivered + dropped must equal sent exactly.
        assert drops > 0
        assert socket.delivered + drops == 200

    def test_no_ring_drops_below_capacity(self):
        config = KernelConfig(rx_ring_capacity=256)
        testbed, socket, sender = overlay_env(config=config)
        for _ in range(200):
            sender.send_udp(src_port=40000, dst_port=5000,
                            payload=None, payload_len=32)
        testbed.sim.run(until=20 * MS)
        assert testbed.server.kernel.drops.get("eth:ring", 0) == 0
        assert socket.delivered == 200


class TestSocketOverflow:
    def test_slow_app_overflows_rcvbuf_not_kernel_queues(self):
        config = KernelConfig(socket_rcvbuf_packets=32)
        testbed, socket, sender = overlay_env(config=config)
        # No application thread drains the socket.
        for _ in range(100):
            sender.send_udp(src_port=40000, dst_port=5000,
                            payload=None, payload_len=32)
        testbed.sim.run(until=20 * MS)
        drops = testbed.server.kernel.drops
        assert drops.get(socket.rcvbuf.name) == 68
        assert socket.delivered == 32
        # Kernel-level queues did NOT drop: the loss is at the app edge.
        assert drops.get("eth:ring", 0) == 0

    def test_conservation_under_socket_overflow(self):
        config = KernelConfig(socket_rcvbuf_packets=16)
        testbed, socket, sender = overlay_env(config=config)
        for _ in range(64):
            sender.send_udp(src_port=40000, dst_port=5000,
                            payload=None, payload_len=32)
        testbed.sim.run(until=20 * MS)
        total_drops = testbed.server.kernel.total_drops
        assert socket.delivered + total_drops == 64


class TestBacklogOverflow:
    def test_tiny_backlog_drops_at_stage3(self):
        # Backlog (netdev_max_backlog) smaller than one NAPI batch: the
        # bridge stage must tail-drop into the backlog.
        config = KernelConfig(backlog_capacity=16, napi_weight=64)
        testbed, socket, sender = overlay_env(config=config)
        for _ in range(64):
            sender.send_udp(src_port=40000, dst_port=5000,
                            payload=None, payload_len=32)
        testbed.sim.run(until=20 * MS)
        drops = testbed.server.kernel.drops
        backlog_drops = sum(count for name, count in drops.items()
                            if "backlog" in name)
        assert backlog_drops > 0
        assert socket.delivered + testbed.server.kernel.total_drops == 64

    def test_prism_sync_high_priority_bypasses_backlog_limit(self):
        # In sync mode, high-priority packets never enter the backlog, so
        # a tiny backlog cannot drop them.
        config = KernelConfig(backlog_capacity=4, napi_weight=64)
        testbed, socket, sender = overlay_env(StackMode.PRISM_SYNC, config)
        testbed.mark_high_priority("10.0.0.10", 5000)
        for _ in range(64):
            sender.send_udp(src_port=40000, dst_port=5000,
                            payload=None, payload_len=32)
        testbed.sim.run(until=20 * MS)
        assert socket.delivered == 64
        assert testbed.server.kernel.total_drops == 0


class TestGroCellsOverflow:
    def test_tiny_cell_queue_drops_at_stage2(self):
        config = KernelConfig(napi_queue_capacity=8, napi_weight=64)
        testbed, socket, sender = overlay_env(config=config)
        for _ in range(64):
            sender.send_udp(src_port=40000, dst_port=5000,
                            payload=None, payload_len=32)
        testbed.sim.run(until=20 * MS)
        drops = testbed.server.kernel.drops
        assert drops.get("br:low", 0) > 0
        assert socket.delivered + testbed.server.kernel.total_drops == 64
