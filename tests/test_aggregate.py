"""Flow-class aggregation: exact accounting for aggregated populations.

An :class:`AggregatedClientPopulation` replaces one simulation process
per user with a single credit-pool process, so these tests pin the
properties the replacement must preserve:

- the closed loop is bounded: outstanding never exceeds the population;
- the books balance exactly at any instant:
  ``sent == replies + timed_out + outstanding``;
- lost requests *time out and reclaim their credit* — a drop can never
  permanently shrink the population (the deadlock class the aggregated
  model is explicitly designed out of);
- late replies (after the timeout already fired) are counted separately
  and do not double-credit.
"""

from __future__ import annotations

import pytest

from repro.apps.aggregate import AggregatedClientPopulation, FlowClassLedger
from repro.sim.engine import Simulator
from repro.sim.rng import SeededRng
from repro.sim.units import MS


class _Loopback:
    """Test transport: replies after a fixed delay, can drop by seq."""

    def __init__(self, sim, delay_ns=100_000, drop=lambda seq: False):
        self.sim = sim
        self.delay_ns = delay_ns
        self.drop = drop
        self.population = None
        self.sent = []

    def send(self, seq, now):
        self.sent.append((seq, now))
        if not self.drop(seq):
            self.sim.schedule(self.delay_ns, self.population.on_reply, seq)


def _population(sim, transport, *, users=20, think_ns=1 * MS,
                timeout_ns=5 * MS, jitter_frac=0.0):
    population = AggregatedClientPopulation(
        sim, transport.send, users=users, think_ns=think_ns,
        timeout_ns=timeout_ns, rng=SeededRng(7), label="test:hi",
        jitter_frac=jitter_frac)
    transport.population = population
    return population


def test_closed_loop_bounds_outstanding_and_balances():
    sim = Simulator()
    transport = _Loopback(sim)
    population = _population(sim, transport, users=20)
    sim.run(until=50 * MS)
    ledger = population.ledger
    ledger.check()  # raises on imbalance
    assert ledger.sent == ledger.replies + ledger.timed_out + ledger.outstanding
    assert 0 <= ledger.outstanding <= 20
    assert ledger.timed_out == 0
    # 20 users cycling every ~1.1 ms for 50 ms — hundreds of requests
    # from a single process, not one process per user.
    assert ledger.sent > 400


def test_drops_time_out_and_reclaim_credits():
    sim = Simulator()
    transport = _Loopback(sim, drop=lambda seq: seq % 3 == 0)
    population = _population(sim, transport, users=10, timeout_ns=2 * MS)
    sim.run(until=60 * MS)
    ledger = population.ledger
    ledger.check()
    assert ledger.timed_out > 0
    # The whole population keeps cycling: a dropped request costs one
    # timeout, not a permanently lost user.
    assert ledger.sent > ledger.users * 3
    assert ledger.outstanding <= ledger.users


def test_late_reply_does_not_double_credit():
    sim = Simulator()
    transport = _Loopback(sim)
    population = _population(sim, transport, users=1, think_ns=1 * MS,
                             timeout_ns=1 * MS)
    # First request times out at t≈1ms; deliver its reply *after* that.
    transport.drop = lambda seq: True
    sim.run(until=int(1.5 * MS))
    assert population.ledger.timed_out == 1
    population.on_reply(1)
    ledger = population.ledger
    ledger.check()
    assert ledger.late_replies == 1
    assert ledger.replies == 0


def test_ramp_staggers_initial_sends():
    sim = Simulator()
    transport = _Loopback(sim, delay_ns=10_000_000)
    _population(sim, transport, users=100, think_ns=10 * MS)
    sim.run(until=1 * MS)  # one tenth of the ramp (ramp defaults to think)
    assert 5 <= len(transport.sent) <= 20  # paced, not a t=0 burst


def test_ledger_check_raises_on_imbalance():
    ledger = FlowClassLedger("broken", users=5)
    ledger.sent = 10
    ledger.replies = 3
    with pytest.raises(RuntimeError, match="imbalance"):
        ledger.check()
    ledger = FlowClassLedger("overdrawn", users=2)
    ledger.sent = 3
    ledger.outstanding = 3
    with pytest.raises(RuntimeError, match="outside"):
        ledger.check()


def test_deterministic_across_runs():
    def run_once():
        sim = Simulator()
        transport = _Loopback(sim, drop=lambda seq: seq % 5 == 0)
        population = _population(sim, transport, users=15, jitter_frac=0.2)
        sim.run(until=30 * MS)
        return (population.ledger.to_dict(), transport.sent)

    assert run_once() == run_once()
