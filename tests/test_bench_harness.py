"""Tests for the bench harness: experiment runner, app runners, report."""

import pytest

from repro.bench.applications import (
    AppBenchConfig,
    run_memcached_benchmark,
    run_webserver_benchmark,
)
from repro.bench.experiment import ExperimentConfig, run_experiment
from repro.bench.report import ReproRow, format_experiment_header, format_table
from repro.bench.testbed import build_testbed
from repro.prism.mode import StackMode
from repro.sim.units import MS

FAST = dict(duration_ns=40 * MS, warmup_ns=10 * MS)


class TestExperimentRunner:
    def test_overlay_pingpong_produces_samples(self):
        result = run_experiment(ExperimentConfig(
            mode=StackMode.VANILLA, fg_rate_pps=2_000, **FAST))
        assert result.fg_latency is not None
        assert result.fg_latency.count > 50
        assert result.fg_replies > 50
        assert result.cpu_utilization < 0.2

    def test_overlay_with_background(self):
        result = run_experiment(ExperimentConfig(
            mode=StackMode.PRISM_SYNC, fg_rate_pps=2_000,
            bg_rate_pps=100_000, **FAST))
        assert result.bg_delivered_pps > 80_000
        assert result.cpu_utilization > 0.15

    def test_host_network_pingpong(self):
        result = run_experiment(ExperimentConfig(
            mode=StackMode.VANILLA, network="host", fg_rate_pps=2_000,
            bg_rate_pps=50_000, **FAST))
        assert result.fg_latency is not None
        assert result.bg_delivered_pps > 40_000

    def test_flood_measures_delivery(self):
        result = run_experiment(ExperimentConfig(
            mode=StackMode.VANILLA, fg_kind="flood", fg_rate_pps=100_000,
            **FAST))
        assert result.fg_latency is None or result.fg_latency.count == 0
        assert result.fg_delivered_pps == pytest.approx(100_000, rel=0.05)

    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError):
            run_experiment(ExperimentConfig(network="quantum"))

    def test_label(self):
        config = ExperimentConfig(mode=StackMode.PRISM_SYNC,
                                  bg_rate_pps=300_000)
        assert config.label() == "overlay/prism-sync+bg300k"

    def test_result_str_is_readable(self):
        result = run_experiment(ExperimentConfig(fg_rate_pps=2_000, **FAST))
        text = str(result)
        assert "fg:" in text and "cpu=" in text


class TestAppRunners:
    def test_memcached_smoke(self):
        result = run_memcached_benchmark(AppBenchConfig(
            mode=StackMode.VANILLA, busy=False, **FAST))
        assert result.throughput_per_sec > 10_000
        assert result.latency is not None

    def test_webserver_smoke(self):
        result = run_webserver_benchmark(AppBenchConfig(
            mode=StackMode.VANILLA, busy=False, **FAST))
        assert result.throughput_per_sec > 5_000
        assert result.completed > 100

    def test_app_result_str(self):
        result = run_memcached_benchmark(AppBenchConfig(
            mode=StackMode.VANILLA, busy=False, **FAST))
        assert "op/s" in str(result)


class TestReport:
    def test_format_table_alignment(self):
        rows = [
            ReproRow("quantity a", "-50%", "-48%", True),
            ReproRow("much longer quantity name", "~2x", "1.9x", False),
        ]
        table = format_table(rows)
        lines = table.splitlines()
        assert lines[0].startswith("quantity")
        assert "ok" in table and "MISMATCH" in table

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_header(self):
        header = format_experiment_header("Fig. 9", "something")
        assert "Fig. 9: something" in header

    def test_verdict(self):
        assert ReproRow("q", "p", "m", True).verdict == "ok"
        assert ReproRow("q", "p", "m", False).verdict == "MISMATCH"


class TestTestbed:
    def test_default_layout(self):
        testbed = build_testbed()
        assert str(testbed.server.ip) == "192.168.1.1"
        assert str(testbed.client.ip) == "192.168.1.2"
        assert testbed.server.kernel.mode is StackMode.VANILLA
        assert len(testbed.server.kernel.cpus) == 3

    def test_mode_parameter(self):
        testbed = build_testbed(mode=StackMode.PRISM_SYNC)
        assert testbed.server.kernel.mode is StackMode.PRISM_SYNC

    def test_set_mode_helper(self):
        testbed = build_testbed()
        testbed.set_mode(StackMode.PRISM_BATCH)
        assert testbed.server.kernel.mode is StackMode.PRISM_BATCH

    def test_mark_high_priority_installs_rule(self):
        testbed = build_testbed()
        testbed.mark_high_priority("10.0.0.10", 5000)
        assert len(testbed.server.kernel.priority_db) == 1

    def test_containers_registered(self):
        testbed = build_testbed()
        server_cont = testbed.add_server_container("a", "10.0.0.10")
        client_cont = testbed.add_client_container("b", "10.0.0.100")
        assert testbed.server_containers["a"] is server_cont
        assert testbed.client_containers["b"] is client_cont
        assert len(testbed.overlay) == 2
