"""Span instrumentation of a real traced run.

Pins the contract between the kernel's SPAN_BEGIN/SPAN_END emit sites
and the observer: spans balance per CPU track with LIFO names, nest
properly (per-skb stage spans inside net_rx_action), and carry
monotone non-negative durations.
"""

from collections import defaultdict

from repro.trace.tracer import TracePoint, Tracer


class TestTracedSpans:
    def test_spans_pair_without_mismatch(self, traced_small):
        # spans() raises ValueError on any LIFO name violation.
        spans = traced_small.recorder.spans()
        assert spans, "a traced run must record spans"

    def test_span_durations_non_negative(self, traced_small):
        for _track, _name, begin, end in traced_small.recorder.spans():
            assert end >= begin

    def test_spans_live_on_cpu_tracks(self, traced_small):
        tracks = {t for t, _n, _b, _e in traced_small.recorder.spans()}
        assert any(t.startswith("cpu") for t in tracks)

    def test_stage_spans_nest_inside_softirq(self, traced_small):
        """Every per-skb stage span falls inside some net_rx_action (or
        backlog-poll) span on the same CPU track."""
        outer = defaultdict(list)
        stage_spans = []
        for track, name, begin, end in traced_small.recorder.spans():
            if name == "net_rx_action" or name.startswith("poll:"):
                outer[track].append((begin, end))
            elif name.startswith("skb:"):
                stage_spans.append((track, begin, end))
        assert stage_spans, "expected per-skb stage spans"
        for track, begin, end in stage_spans:
            assert any(b <= begin and end <= e for b, e in outer[track]), (
                f"stage span [{begin}, {end}] on {track} not inside any "
                "softirq/poll span")

    def test_softirq_spans_do_not_overlap_per_cpu(self, traced_small):
        """Top-level net_rx_action invocations on one CPU are serial."""
        per_track = defaultdict(list)
        for track, name, begin, end in traced_small.recorder.spans():
            if name == "net_rx_action":
                per_track[track].append((begin, end))
        assert per_track
        for track, intervals in per_track.items():
            intervals.sort()
            for (b1, e1), (b2, e2) in zip(intervals, intervals[1:]):
                assert e1 <= b2, (
                    f"overlapping net_rx_action spans on {track}: "
                    f"[{b1},{e1}] vs [{b2},{e2}]")


class TestGating:
    def test_no_subscribers_means_no_emits(self):
        """has_subscribers gating: an unsubscribed tracer reports False
        for every observability tracepoint, so the kernel hot path
        skips the emit sites entirely."""
        tracer = Tracer()
        for point in (TracePoint.SPAN_BEGIN, TracePoint.SPAN_END,
                      TracePoint.QUEUE_WAIT, TracePoint.SKB_ALLOC,
                      TracePoint.STAGE_DONE, TracePoint.SOCKET_ENQUEUE):
            assert not tracer.has_subscribers(point)

    def test_detach_restores_zero_subscribers(self, traced_small):
        """After the traced run the observer detached itself."""
        observer = traced_small.observer
        assert observer._callbacks == []
        for point in (TracePoint.SPAN_BEGIN, TracePoint.QUEUE_WAIT):
            assert not observer.tracer.has_subscribers(point)
