"""Poll-order fidelity tests: reproduce the paper's Fig. 6 exactly.

The paper traces which device NAPI polls on each iteration for a
container overlay flow under sustained load:

- Vanilla (Fig. 6a): ``eth, br, eth, veth, br, eth, ...`` — stage 3 of
  batch N is delayed behind stage 1 of batch N+1 (interleaving);
- PRISM (Fig. 6b): ``eth, br, veth, eth, br, veth, ...`` — streamlined,
  with poll-list snapshots [br, eth], [veth, eth], [eth] repeating.
"""

import pytest

from repro.apps.remote import RemoteRequestSender
from repro.bench.testbed import build_testbed
from repro.prism.mode import StackMode
from repro.sim.units import MS
from repro.trace.pollorder import PollOrderTracer
from repro.trace.tracer import Tracer


def run_burst(mode, n_packets=200, mark_high=True):
    """Send a burst so the eth ring stays backlogged across NAPI rounds."""
    tracer = Tracer()
    testbed = build_testbed(mode=mode, tracer=tracer)
    server_cont = testbed.add_server_container("srv", "10.0.0.10")
    client_cont = testbed.add_client_container("cli", "10.0.0.100")
    server_cont.udp_socket(5000, core_id=1)
    if mark_high:
        testbed.mark_high_priority("10.0.0.10", 5000)
    poll_trace = PollOrderTracer(tracer)
    sender = RemoteRequestSender(testbed.client, testbed.overlay,
                                 client_cont, "10.0.0.10")
    for _ in range(n_packets):
        sender.send_udp(src_port=40000, dst_port=5000,
                        payload=None, payload_len=32)
    testbed.sim.run(until=10 * MS)
    return poll_trace, testbed


class TestVanillaPollOrder:
    def test_interleaved_device_order_matches_fig6a(self):
        trace, _testbed = run_burst(StackMode.VANILLA)
        order = trace.device_order()
        # Paper Fig. 6a iterations 1-6.
        assert order[:6] == ["eth", "br", "eth", "veth", "br", "eth"]

    def test_steady_state_period_is_interleaved(self):
        trace, _testbed = run_burst(StackMode.VANILLA, n_packets=400)
        order = trace.device_order()
        # In steady state the repeating unit is (veth, br, eth): stage 3
        # of batch N only runs after stage 1 of batch N+1 was polled.
        steady = order[3:12]
        assert steady == ["veth", "br", "eth"] * 3

    def test_first_batch_delivery_delayed_behind_second_eth_poll(self):
        trace, _testbed = run_burst(StackMode.VANILLA)
        order = trace.device_order()
        first_veth = order.index("veth")
        eth_polls_before = order[:first_veth].count("eth")
        assert eth_polls_before >= 2  # batch 2 was fetched before delivery


class TestPrismPollOrder:
    def test_streamlined_device_order_matches_fig6b(self):
        trace, _testbed = run_burst(StackMode.PRISM_BATCH)
        order = trace.device_order()
        # Paper Fig. 6b iterations 1-6: strict stage order per batch.
        assert order[:6] == ["eth", "br", "veth", "eth", "br", "veth"]

    def test_poll_list_snapshots_match_fig6b(self):
        trace, _testbed = run_burst(StackMode.PRISM_BATCH)
        snapshots = [record.poll_list for record in trace.records[:3]]
        assert snapshots == [("br", "eth"), ("veth", "eth"), ("eth",)]

    def test_low_priority_flow_in_prism_behaves_like_vanilla_order(self):
        # Without a priority rule, PRISM tail-schedules everything; the
        # single poll list still streamlines less aggressively but the
        # first batch is NOT preempted to the head.
        trace, _testbed = run_burst(StackMode.PRISM_BATCH, mark_high=False)
        order = trace.device_order()
        assert order[0] == "eth"
        assert "br" in order and "veth" in order

    def test_sync_mode_polls_only_eth(self):
        trace, _testbed = run_burst(StackMode.PRISM_SYNC)
        order = trace.device_order()
        # High-priority packets never enter stage queues: the only NAPI
        # device ever polled is the physical NIC (paper §III-B1).
        assert set(order) == {"eth"}

    def test_sync_mode_still_delivers_everything(self):
        trace, testbed = run_burst(StackMode.PRISM_SYNC, n_packets=150)
        container = testbed.server_containers["srv"]
        socket = container.netns.sockets.lookup_udp(container.ip, 5000)
        assert socket.delivered == 150


class TestPollOrderTracerApi:
    def test_as_table_renders(self):
        trace, _testbed = run_burst(StackMode.PRISM_BATCH)
        table = trace.as_table(limit=3)
        assert "eth" in table and "br" in table
        assert table.count("\n") == 3  # header + 3 rows

    def test_stop_detaches(self):
        tracer = Tracer()
        trace = PollOrderTracer(tracer)
        trace.stop()
        from repro.trace.tracer import TracePoint
        assert not tracer.has_subscribers(TracePoint.NAPI_POLL)

    def test_clear(self):
        trace, _testbed = run_burst(StackMode.VANILLA)
        assert trace.records
        trace.clear()
        assert not trace.records
