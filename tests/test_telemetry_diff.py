"""Run-to-run metric diffing: flattening, deltas, skips, CLI contract."""

from __future__ import annotations

import json

import pytest

from repro.telemetry.diff import (
    diff_metrics,
    flatten_document,
    load_metrics,
    main,
    print_diff,
)


def snapshot_doc(**values):
    """A minimal telemetry snapshot with one labeled counter family."""
    return {
        "version": 1,
        "metrics": {
            "repro_drops": {
                "type": "counter", "help": "", "label_names": ["queue"],
                "samples": [{"labels": {"queue": q}, "value": v}
                            for q, v in values.items()],
            },
        },
    }


class TestFlatten:
    def test_snapshot_series_keys_include_sorted_labels(self):
        flat = flatten_document(snapshot_doc(ring=3))
        assert flat == {'repro_drops{queue="ring"}': 3}

    def test_histogram_flattens_to_sum_and_count(self):
        doc = {"version": 1, "metrics": {"repro_batch": {
            "type": "histogram", "help": "", "label_names": ["napi"],
            "samples": [{"labels": {"napi": "eth"},
                         "buckets": {"1": 1, "+Inf": 2},
                         "sum": 9.0, "count": 2}],
        }}}
        assert flatten_document(doc) == {
            'repro_batch_sum{napi="eth"}': 9.0,
            'repro_batch_count{napi="eth"}': 2,
        }

    def test_experiment_result_shape(self):
        doc = {
            "version": 1,
            "config": {"mode": "vanilla"},
            "fg_delivered_pps": 1000.0,
            "fg_latency": None,
            "drops": {"ring": 5},
            "telemetry": snapshot_doc(ring=5),
        }
        flat = flatten_document(doc)
        assert flat["fg_delivered_pps"] == 1000.0
        assert flat['drops{queue="ring"}'] == 5
        assert flat['repro_drops{queue="ring"}'] == 5
        assert "version" not in flat and "config" not in flat

    def test_bench_file_uses_latest_run(self):
        doc = {"runs": [
            {"canonical_packets_per_sec": 100.0, "workloads": {}},
            {"canonical_packets_per_sec": 250.0, "quick": True,
             "workloads": {"overlay": {"packets_per_sec": 9.0,
                                       "digest": "abc"}}},
        ]}
        flat = flatten_document(doc)
        assert flat["canonical_packets_per_sec"] == 250.0
        assert flat["overlay.packets_per_sec"] == 9.0
        assert "quick" not in flat  # bools excluded
        assert "overlay.digest" not in flat  # strings excluded


class TestDiff:
    def test_relative_deltas(self):
        rows, skipped = diff_metrics({"a": 100}, {"a": 110})
        assert rows == [("a", 100, 110, pytest.approx(0.1))]
        assert skipped == []

    def test_missing_baseline_is_skipped_with_warning(self):
        rows, skipped = diff_metrics({}, {"new_metric": 5})
        assert rows == []
        assert skipped == ["new_metric: no baseline value"]

    def test_missing_current_is_skipped_with_warning(self):
        rows, skipped = diff_metrics({"gone": 5}, {})
        assert rows == []
        assert skipped == ["gone: no current value"]

    def test_zero_baseline_is_skipped_not_divided(self):
        rows, skipped = diff_metrics({"z": 0}, {"z": 7})
        assert rows == []
        assert skipped == ["z: baseline is zero (current 7)"]

    def test_zero_to_zero_is_silent(self):
        rows, skipped = diff_metrics({"z": 0}, {"z": 0})
        assert rows == [] and skipped == []

    def test_match_filters_series(self):
        rows, _ = diff_metrics({"keep_me": 1, "other": 1},
                               {"keep_me": 2, "other": 2}, match="keep")
        assert [r[0] for r in rows] == ["keep_me"]

    def test_print_diff_counts_breaches(self, capsys):
        rows, skipped = diff_metrics({"a": 100, "b": 100},
                                     {"a": 130, "b": 101})
        breaches = print_diff(rows, skipped, threshold_pct=10)
        out = capsys.readouterr().out
        assert breaches == 1
        assert "⚠" in out and "FAIL: 1 series" in out

    def test_print_diff_without_threshold_never_fails(self, capsys):
        rows, skipped = diff_metrics({"a": 1}, {"a": 100})
        assert print_diff(rows, skipped, threshold_pct=None) == 0


class TestCli:
    def write(self, tmp_path, name, doc):
        path = tmp_path / name
        path.write_text(json.dumps(doc))
        return str(path)

    def test_exit_zero_when_within_threshold(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.json", snapshot_doc(ring=100))
        b = self.write(tmp_path, "b.json", snapshot_doc(ring=105))
        assert main([a, b, "--threshold", "10"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_exit_one_on_breach(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.json", snapshot_doc(ring=100))
        b = self.write(tmp_path, "b.json", snapshot_doc(ring=200))
        assert main([a, b, "--threshold", "10"]) == 1

    def test_missing_file_skips_gracefully(self, tmp_path, capsys):
        b = self.write(tmp_path, "b.json", snapshot_doc(ring=1))
        assert main([str(tmp_path / "absent.json"), b,
                     "--threshold", "5"]) == 0
        assert "not found — skipped" in capsys.readouterr().err

    def test_unreadable_json_exits_two(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        good = self.write(tmp_path, "good.json", snapshot_doc(ring=1))
        assert main([str(bad), good]) == 2

    def test_empty_baseline_skips(self, tmp_path, capsys):
        a = self.write(tmp_path, "a.json", {"version": 1, "metrics": {}})
        b = self.write(tmp_path, "b.json", snapshot_doc(ring=1))
        assert main([a, b, "--threshold", "5"]) == 0
        assert "no numeric series" in capsys.readouterr().err

    def test_load_metrics_rejects_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(SystemExit):
            load_metrics(path)

    def test_bench_files_diff_end_to_end(self, tmp_path, capsys):
        base = {"runs": [{"canonical_packets_per_sec": 100.0,
                          "workloads": {"w": {"packets_per_sec": 50.0}}}]}
        cur = {"runs": [{"canonical_packets_per_sec": 90.0,
                         "workloads": {"w": {"packets_per_sec": 49.0}}}]}
        a = self.write(tmp_path, "base.json", base)
        b = self.write(tmp_path, "cur.json", cur)
        assert main([a, b, "--threshold", "25"]) == 0
        assert main([a, b, "--threshold", "5",
                     "--match", "canonical"]) == 1
