"""Smoke tests: every example script runs to completion.

The examples are user-facing documentation; a broken example is a broken
deliverable.  Each is executed in-process (fast paths where available)
with its module-level main().
"""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"),
                                                  path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "poll_order_trace.py",
            "memcached_tail_latency.py", "load_sweep.py",
            "multilevel_priorities.py", "stage_timeline.py",
            "fault_demo.py"} <= names


def test_poll_order_trace_runs(capsys):
    module = load_example("poll_order_trace.py")
    module.main()
    out = capsys.readouterr().out
    assert "eth" in out and "veth" in out
    assert "Fig. 6a" in out or "Vanilla" in out


def test_stage_timeline_runs(capsys):
    module = load_example("stage_timeline.py")
    module.main()
    out = capsys.readouterr().out
    assert "#" in out
    assert "prism-sync" in out


@pytest.mark.slow
@pytest.mark.faults
def test_fault_demo_runs(tmp_path, capsys):
    module = load_example("fault_demo.py")
    out = tmp_path / "fault_demo.report.json"
    module.main(str(out))
    stdout = capsys.readouterr().out
    assert "balanced=True" in stdout
    assert "gave_up=0" in stdout
    report = json.loads(out.read_text())
    assert report["conservation"]["residual"] == 0
    assert report["faulted"]["replies"] > 0


@pytest.mark.slow
def test_quickstart_runs(capsys):
    module = load_example("quickstart.py")
    module.main()
    out = capsys.readouterr().out
    assert "vanilla" in out and "prism-sync" in out
