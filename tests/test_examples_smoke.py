"""Smoke tests: every example script runs to completion.

The examples are user-facing documentation; a broken example is a broken
deliverable.  Each is executed in-process (fast paths where available)
with its module-level main().
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"),
                                                  path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "poll_order_trace.py",
            "memcached_tail_latency.py", "load_sweep.py",
            "multilevel_priorities.py", "stage_timeline.py"} <= names


def test_poll_order_trace_runs(capsys):
    module = load_example("poll_order_trace.py")
    module.main()
    out = capsys.readouterr().out
    assert "eth" in out and "veth" in out
    assert "Fig. 6a" in out or "Vanilla" in out


def test_stage_timeline_runs(capsys):
    module = load_example("stage_timeline.py")
    module.main()
    out = capsys.readouterr().out
    assert "#" in out
    assert "prism-sync" in out


@pytest.mark.slow
def test_quickstart_runs(capsys):
    module = load_example("quickstart.py")
    module.main()
    out = capsys.readouterr().out
    assert "vanilla" in out and "prism-sync" in out
