"""Registry semantics + OpenMetrics exposition golden.

The registry is the aggregate-telemetry wire format: its snapshot rides
inside ``ExperimentResult`` and its text exposition is a CI artifact, so
both are pinned here — including an exact exposition golden (format
drift would silently break downstream tooling like promtool or the
metrics differ).
"""

from __future__ import annotations

import pytest

from repro.telemetry import MetricsRegistry, SNAPSHOT_VERSION
from repro.telemetry.openmetrics import render_openmetrics


class TestCounter:
    def test_unlabeled_counter_is_its_own_child(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_ticks", "ticks")
        c.inc()
        c.inc(4)
        assert c.value == 5
        assert c.labels().value == 5

    def test_labeled_counter_children_are_independent(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_drops", "drops", ("queue",))
        c.labels("ring").inc(3)
        c.labels("backlog").inc()
        assert c.labels("ring").value == 3
        assert c.labels("backlog").value == 1

    def test_counter_rejects_negative_increment(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_ticks", "ticks")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_set_total_overwrites_with_scraped_value(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_rx", "rx", ("dev",))
        c.labels("eth").set_total(100)
        c.labels("eth").set_total(250)
        assert c.labels("eth").value == 250

    def test_label_values_are_stringified(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_irqs", "irqs", ("cpu",))
        c.labels(0).inc()
        assert c.labels("0").value == 1

    def test_label_arity_mismatch_raises(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_drops", "drops", ("queue",))
        with pytest.raises(ValueError):
            c.labels("a", "b")


class TestGauge:
    def test_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_depth", "depth")
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.current() == 7

    def test_callback_gauge_reads_source_at_collect_time(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_util", "utilization", ("cpu",))
        state = {"v": 0.25}
        g.labels(0).set_function(lambda: state["v"])
        assert g.labels(0).current() == 0.25
        state["v"] = 0.75
        assert g.labels(0).current() == 0.75

    def test_callback_gauge_maps_none_to_zero(self):
        reg = MetricsRegistry()
        g = reg.gauge("repro_first_at", "first event")
        g.set_function(lambda: None)
        assert g.current() == 0


class TestHistogram:
    def test_observe_fills_buckets_cumulatively(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_batch", "batch", buckets=(1, 4, 16))
        for v in (1, 2, 5, 100):
            h.observe(v)
        child = h.labels()
        assert child.cumulative() == [1, 2, 3, 4]
        assert child.sum == 108
        assert child.count == 4

    def test_labeled_histogram_requires_labels_for_observe(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_batch", "batch", ("napi",))
        with pytest.raises(ValueError):
            h.observe(3)
        h.labels("eth").observe(3)
        assert h.labels("eth").count == 1

    def test_empty_bucket_list_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("repro_batch", "batch", buckets=())


class TestRegistry:
    def test_reregistration_is_idempotent_for_identical_shape(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_x", "x", ("l",))
        b = reg.counter("repro_x", "x", ("l",))
        assert a is b

    def test_reregistration_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_x", "x", ("l",))
        with pytest.raises(ValueError):
            reg.gauge("repro_x", "x", ("l",))
        with pytest.raises(ValueError):
            reg.counter("repro_x", "x", ("other",))

    def test_invalid_metric_names_rejected(self):
        reg = MetricsRegistry()
        for bad in ("", "9lives", "has space", "dash-ed"):
            with pytest.raises(ValueError):
                reg.counter(bad, "bad")

    def test_snapshot_shape_and_version(self):
        reg = MetricsRegistry()
        reg.counter("repro_c", "c", ("l",)).labels("a").inc(2)
        reg.gauge("repro_g", "g").set(1.5)
        reg.histogram("repro_h", "h", buckets=(1, 2)).observe(1)
        snap = reg.snapshot()
        assert snap["version"] == SNAPSHOT_VERSION
        assert snap["metrics"]["repro_c"]["type"] == "counter"
        assert snap["metrics"]["repro_c"]["samples"] == [
            {"labels": {"l": "a"}, "value": 2}]
        assert snap["metrics"]["repro_g"]["samples"] == [
            {"labels": {}, "value": 1.5}]
        hist = snap["metrics"]["repro_h"]["samples"][0]
        assert hist["buckets"] == {"1.0": 1, "2.0": 1, "+Inf": 1}
        assert hist["sum"] == 1 and hist["count"] == 1

    def test_children_sorted_by_label_values_in_snapshot(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_c", "c", ("l",))
        c.labels("zeta").inc()
        c.labels("alpha").inc()
        values = [s["labels"]["l"]
                  for s in reg.snapshot()["metrics"]["repro_c"]["samples"]]
        assert values == ["alpha", "zeta"]


class TestOpenMetricsExposition:
    def test_exposition_golden(self):
        """Exact text format — pinned so downstream parsers never drift."""
        reg = MetricsRegistry()
        c = reg.counter("repro_drops", "Packets dropped", ("queue",))
        c.labels("ring").inc(7)
        c.labels('we"ird\\q').inc(1)
        g = reg.gauge("repro_depth", "Queue depth", ("queue",))
        g.labels("ring").set(3)
        h = reg.histogram("repro_batch", "Batch size", ("napi",),
                          buckets=(1, 8))
        h.labels("eth").observe(1)
        h.labels("eth").observe(5)
        assert render_openmetrics(reg) == (
            '# TYPE repro_drops counter\n'
            '# HELP repro_drops Packets dropped\n'
            'repro_drops_total{queue="ring"} 7\n'
            'repro_drops_total{queue="we\\"ird\\\\q"} 1\n'
            '# TYPE repro_depth gauge\n'
            '# HELP repro_depth Queue depth\n'
            'repro_depth{queue="ring"} 3\n'
            '# TYPE repro_batch histogram\n'
            '# HELP repro_batch Batch size\n'
            'repro_batch_bucket{napi="eth",le="1"} 1\n'
            'repro_batch_bucket{napi="eth",le="8"} 2\n'
            'repro_batch_bucket{napi="eth",le="+Inf"} 2\n'
            'repro_batch_sum{napi="eth"} 6\n'
            'repro_batch_count{napi="eth"} 2\n'
            '# EOF\n'
        )

    def test_exposition_is_deterministic(self):
        def build():
            reg = MetricsRegistry()
            c = reg.counter("repro_c", "c", ("l",))
            for v in ("b", "a", "c"):
                c.labels(v).inc()
            reg.gauge("repro_g", "g").set(0.5)
            return render_openmetrics(reg)

        assert build() == build()

    def test_exposition_ends_with_eof(self):
        assert render_openmetrics(MetricsRegistry()) == "# EOF\n"

    def test_label_value_escaping(self):
        """Exposition format: label values escape \\, ", and newline."""
        reg = MetricsRegistry()
        c = reg.counter("repro_c", "c", ("l",))
        c.labels('a\\b"c\nd').inc()
        line = [l for l in render_openmetrics(reg).splitlines()
                if l.startswith("repro_c_total")][0]
        assert line == 'repro_c_total{l="a\\\\b\\"c\\nd"} 1'

    def test_help_escaping_quotes_pass_through(self):
        """HELP text is unquoted: only \\ and newline are escaped there —
        a double quote must appear verbatim (regression: it used to be
        escaped like a label value)."""
        reg = MetricsRegistry()
        reg.counter("repro_c", 'drops on "ring" queues\nper class\\site')
        help_line = [l for l in render_openmetrics(reg).splitlines()
                     if l.startswith("# HELP ")][0]
        assert help_line == (
            '# HELP repro_c drops on "ring" queues\\nper class\\\\site')
