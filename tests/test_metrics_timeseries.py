"""Tests for the windowed time series."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.timeseries import WindowedSeries


class TestWindowedSeries:
    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowedSeries(0)

    def test_bucketing(self):
        series = WindowedSeries(window_ns=1_000)
        series.record(100)
        series.record(900)
        series.record(1_100)
        windows = series.windows()
        assert [w.count for w in windows] == [2, 1]
        assert windows[0].start_ns == 0
        assert windows[1].start_ns == 1_000

    def test_rates(self):
        series = WindowedSeries(window_ns=1_000_000)  # 1 ms windows
        for at in range(0, 1_000_000, 10_000):  # 100 events in 1 ms
            series.record(at)
        (window,) = series.windows()
        assert window.rate_per_sec == pytest.approx(100_000)
        assert series.peak_rate_per_sec() == pytest.approx(100_000)

    def test_latency_summary_per_window(self):
        series = WindowedSeries(window_ns=1_000)
        series.record(100, value_ns=10)
        series.record(200, value_ns=30)
        series.record(1_500)  # count-only event
        windows = series.windows()
        assert windows[0].latency.avg_ns == 20
        assert windows[1].latency is None

    def test_rate_series_includes_holes(self):
        series = WindowedSeries(window_ns=1_000)
        series.record(500)
        series.record(3_500)
        rates = series.rate_series()
        assert len(rates) == 4
        assert rates[1] == 0.0 and rates[2] == 0.0

    def test_empty(self):
        series = WindowedSeries(window_ns=1_000)
        assert series.windows() == []
        assert series.rate_series() == []
        assert series.peak_rate_per_sec() == 0.0
        assert series.total == 0

    @given(st.lists(st.integers(0, 10**9), min_size=1, max_size=300),
           st.integers(1, 10**8))
    def test_total_conserved(self, timestamps, window):
        series = WindowedSeries(window_ns=window)
        for at in timestamps:
            series.record(at)
        assert series.total == len(timestamps)
        assert sum(w.count for w in series.windows()) == len(timestamps)

    def test_integration_with_experiment(self):
        """Time-resolved view of an overload transition."""
        from repro.apps.remote import RemoteRequestSender
        from repro.bench.testbed import build_testbed
        from repro.sim.units import MS
        from repro.trace.tracer import TracePoint

        testbed = build_testbed()
        server = testbed.add_server_container("srv", "10.0.0.10")
        client = testbed.add_client_container("cli", "10.0.0.100")
        server.udp_socket(5000, core_id=1)
        series = WindowedSeries(window_ns=1 * MS, name="deliveries")
        testbed.server.kernel.tracer.attach(
            TracePoint.SOCKET_ENQUEUE,
            lambda socket, skb, **kw: series.record(testbed.sim.now))
        sender = RemoteRequestSender(testbed.client, testbed.overlay,
                                     client, "10.0.0.10")
        for _ in range(300):
            sender.send_udp(src_port=40000, dst_port=5000,
                            payload=None, payload_len=32)
        testbed.sim.run(until=10 * MS)
        assert series.total == 300
        assert series.peak_rate_per_sec() > 0
