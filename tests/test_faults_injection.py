"""Fault-injection mechanics: each fault family fires, is accounted at a
``fault:``-prefixed site, and never breaks packet conservation.

Also covers the two small hardening changes that ride along with the
subsystem: ``PacketQueue.clear()`` accounting and the bounded LRU decap
memo in :class:`NicStage`.
"""

import math

import pytest

from repro.apps.sockperf import SockperfUdpClient, SockperfUdpServer
from repro.bench.testbed import build_testbed
from repro.faults import FaultInjector, FaultPlan
from repro.faults.conservation import PacketLedger
from repro.netdev.nic import NicStage
from repro.netdev.queues import PacketQueue
from repro.packet.packet import vxlan_decapsulate
from repro.sim.units import MS

from tests.test_packet_packet import encapsulate, make_inner

pytestmark = pytest.mark.faults


def _pingpong_testbed(spec, rate_pps=1_000):
    testbed = build_testbed()
    plan = FaultPlan.parse(spec)
    injector = FaultInjector(plan, testbed).install()
    srv = testbed.add_server_container("srv", "10.0.0.10")
    cli = testbed.add_client_container("cli", "10.0.0.100")
    SockperfUdpServer(srv, 5000, core_id=1)
    client = SockperfUdpClient(testbed.sim, testbed.client, testbed.overlay,
                               cli, "10.0.0.10", 5000, rate_pps=rate_pps,
                               src_port=30001)
    return testbed, injector, client


class TestRingBurst:
    def test_burst_is_fully_accounted(self):
        testbed = build_testbed()
        plan = FaultPlan.parse("burst@1ms x2")
        injector = FaultInjector(plan, testbed).install()
        testbed.sim.run(until=10 * MS)
        ring = testbed.server.nic.ring
        expected = math.ceil(2 * ring.capacity)
        assert injector.bursts_fired == 1
        assert injector.burst_packets == expected
        assert injector.stats["fault:burst"] == expected
        report = injector.conservation_report()
        assert report["balanced"]
        assert report["injected"] == expected
        # Most of the burst overflows the ring; survivors climb the stack
        # and die at the unmatched-UDP terminal.  Nothing leaks.
        drops = report["dropped_by_site"]
        assert drops.get("eth:ring", 0) > 0
        assert drops.get("server/root:rcv:udp-unmatched", 0) > 0

    def test_burst_does_not_wedge_a_live_workload(self):
        testbed, injector, client = _pingpong_testbed("burst@5ms x2")
        testbed.sim.run(until=30 * MS)
        assert injector.bursts_fired == 1
        assert client.replies > 0
        assert injector.ledger.balanced


class TestQueueLoss:
    def test_site_loss_counts_at_prefixed_site(self):
        testbed, injector, client = _pingpong_testbed(
            "loss:eth:0.5", rate_pps=5_000)
        testbed.sim.run(until=30 * MS)
        forced = {site: n for site, n in injector.stats.items()
                  if site.startswith("fault:eth")}
        assert sum(forced.values()) > 0
        assert injector.ledger.balanced
        # Pingpong with no retry: every forced rx drop is a lost reply.
        assert client.replies < client.sent

    def test_wire_loss_window(self):
        testbed, injector, client = _pingpong_testbed(
            "loss:wire:1.0@5ms-6ms", rate_pps=2_000)
        testbed.sim.run(until=30 * MS)
        assert injector.stats.get("fault:wire", 0) > 0
        report = injector.conservation_report()
        assert report["balanced"]
        # Wire drops are injected-then-dropped so the ledger reconciles.
        assert report["dropped_by_site"]["fault:wire"] == \
            report["injected_by_site"]["wire"]


class TestSkbAllocFailure:
    def test_alloc_failures_drop_and_balance(self):
        testbed, injector, client = _pingpong_testbed(
            "skbfail:0.2", rate_pps=5_000)
        testbed.sim.run(until=30 * MS)
        assert injector.stats.get("fault:skb-alloc", 0) > 0
        report = injector.conservation_report()
        assert report["balanced"]
        assert report["dropped_by_site"].get("fault:skb-alloc", 0) > 0
        assert client.replies > 0   # non-dropped pings still complete


class TestIrqLoss:
    def test_lost_irqs_delay_but_do_not_lose_packets(self):
        testbed, injector, client = _pingpong_testbed(
            "irqloss:0.3", rate_pps=2_000)
        testbed.sim.run(until=40 * MS)
        assert injector.irqs_lost > 0
        assert injector.stats["fault:irq"] == injector.irqs_lost
        # An unserviced ring stalls packets, it does not drop them: the
        # next delivered interrupt drains everything, so the run stays
        # balanced and the workload keeps completing after the window.
        assert injector.ledger.balanced
        assert client.replies > 0


class TestLinkFlap:
    def test_flap_with_flush_accounts_ring_contents(self):
        # The burst and the flap fire at the same instant; bursts are
        # scheduled first at install time, so the flush sees a full ring.
        testbed = build_testbed()
        plan = FaultPlan.parse("burst@5ms x2; flap@5ms+1ms!")
        injector = FaultInjector(plan, testbed).install()
        testbed.sim.run(until=20 * MS)
        assert injector.flaps == 1
        ring = testbed.server.nic.ring
        assert ring.cleared > 0
        assert injector.stats["fault:flush:eth:ring"] == ring.cleared
        report = injector.conservation_report()
        assert report["balanced"]
        assert report["dropped_by_site"]["fault:flush:eth:ring"] == \
            ring.cleared
        assert testbed.server.kernel.drops["fault:flush:eth:ring"] == \
            ring.cleared

    def test_flap_drops_wire_traffic_while_down(self):
        testbed, injector, client = _pingpong_testbed(
            "flap@5ms+5ms", rate_pps=2_000)
        testbed.sim.run(until=30 * MS)
        assert injector.flaps == 1
        assert injector.stats.get("fault:wire:flap", 0) > 0
        assert injector.ledger.balanced
        assert client.replies > 0   # traffic resumes after the flap


class TestInstall:
    def test_double_install_raises(self):
        testbed = build_testbed()
        injector = FaultInjector(FaultPlan.parse("burst@1ms"), testbed)
        injector.install()
        with pytest.raises(RuntimeError):
            injector.install()


class TestPacketLedgerUnit:
    def test_terminal_buckets_balance(self):
        ledger = PacketLedger()
        ledger.inject("eth", 10)
        ledger.deliver("sock", 4)
        ledger.drop("fault:x", 3)
        ledger.enter(5)
        ledger.leave(2)
        queue = [object()] * 0
        ledger.add_queue_provider(lambda: len(queue))
        totals = ledger.totals()
        assert totals == {"injected": 10, "delivered": 4, "dropped": 3,
                          "in_processing": 3, "queued": 0, "residual": 0}
        assert ledger.balanced
        ledger.check()   # does not raise

    def test_queue_providers_count_toward_in_flight(self):
        ledger = PacketLedger()
        ledger.inject("eth", 2)
        depth = [2]
        ledger.add_queue_provider(lambda: depth[0])
        assert ledger.balanced
        depth[0] = 0
        assert ledger.totals()["residual"] == 2

    def test_check_reports_sites_on_leak(self):
        ledger = PacketLedger()
        ledger.inject("eth", 5)
        ledger.deliver("sock", 1)
        with pytest.raises(AssertionError, match="residual=4") as err:
            ledger.check()
        assert "eth" in str(err.value) and "sock" in str(err.value)


class TestPacketQueueClear:
    def test_clear_counts_separately_from_drops(self):
        queue = PacketQueue(capacity=2, name="q")
        assert queue.enqueue("a") and queue.enqueue("b")
        assert not queue.enqueue("c")        # tail drop
        queue.clear()
        assert queue.cleared == 2
        assert queue.dropped == 1
        assert len(queue) == 0
        queue.clear()                         # idempotent on empty
        assert queue.cleared == 2
        assert queue.stats() == {"depth": 0, "max_depth": 2,
                                 "enqueued": 2, "dropped": 1, "cleared": 2}


class TestDecapMemoLru:
    def _packets(self, n):
        # Distinct header stacks => distinct memo keys.
        return [encapsulate(make_inner(src_port=40000 + i)) for i in range(n)]

    def test_memo_is_bounded(self, monkeypatch):
        monkeypatch.setattr(NicStage, "DECAP_MEMO_CAP", 4)
        stage = NicStage(nic=None)
        for packet in self._packets(100):
            stage._decap(packet)
        assert len(stage._decap_memo) == 4

    def test_hot_entry_survives_churn(self, monkeypatch):
        monkeypatch.setattr(NicStage, "DECAP_MEMO_CAP", 4)
        stage = NicStage(nic=None)
        hot = encapsulate(make_inner(src_port=39999))
        stage._decap(hot)
        for packet in self._packets(3):
            stage._decap(packet)
        # Touch the hot entry, then churn enough to evict all cold ones.
        stage._decap(hot)
        for packet in self._packets(3):
            stage._decap(packet)
        assert id(hot.headers) in stage._decap_memo

    def test_memoized_decap_matches_fresh_decap(self, monkeypatch):
        monkeypatch.setattr(NicStage, "DECAP_MEMO_CAP", 2)
        stage = NicStage(nic=None)
        outer = encapsulate(make_inner(payload_len=80, src_port=41000))
        first = stage._decap(outer)
        second = stage._decap(outer)          # memo hit
        _header, reference = vxlan_decapsulate(outer)
        for inner in (first, second):
            assert inner.headers == reference.headers
            assert inner.payload_len == reference.payload_len
            assert inner.l4.src_port == 41000
