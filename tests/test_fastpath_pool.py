"""Unit tests for the skb free-list pool and cached header builder."""

from __future__ import annotations

from repro.fastpath.headercache import CachedUdpBuilder
from repro.fastpath.pool import SkbPool
from repro.packet.addr import Ipv4Address, MacAddress
from repro.packet.headers import UdpHeader
from repro.packet.packet import Packet
from repro.packet.skb import PRIORITY_UNCLASSIFIED, SKBuff


def _packet(payload_len: int = 100) -> Packet:
    return Packet(headers=(), payload_len=payload_len)


class TestSkbPool:
    def test_ids_are_fresh_and_sequential(self):
        pool = SkbPool()
        ids = [pool.alloc(_packet()).skb_id for _ in range(3)]
        assert ids == [1, 2, 3]

    def test_recycled_object_is_reused_with_a_fresh_id(self):
        pool = SkbPool()
        skb = pool.alloc(_packet())
        first_id = skb.skb_id
        skb.mark("rx_ring", 123)
        skb.classify(0)
        pool.recycle(skb)

        again = pool.alloc(_packet(), alloc_time=99)
        assert again is skb  # object reused...
        assert again.skb_id == first_id + 1  # ...but never the id
        assert again.marks == {}
        assert again.priority_level is PRIORITY_UNCLASSIFIED
        assert again.alloc_time == 99

    def test_recycle_is_idempotent(self):
        pool = SkbPool()
        skb = pool.alloc(_packet())
        pool.recycle(skb)
        pool.recycle(skb)  # double-free must not double-list
        assert len(pool) == 1

    def test_disabled_pool_never_recycles(self):
        pool = SkbPool(enabled=False)
        skb = pool.alloc(_packet())
        pool.recycle(skb)
        assert len(pool) == 0
        assert pool.alloc(_packet()) is not skb

    def test_two_pools_are_independent(self):
        """Per-experiment id allocators: no cross-pool leakage."""
        a, b = SkbPool(), SkbPool()
        a.alloc(_packet())
        a.alloc(_packet())
        assert b.alloc(_packet()).skb_id == 1

    def test_counters(self):
        pool = SkbPool()
        skb = pool.alloc(_packet())
        pool.recycle(skb)
        pool.alloc(_packet())
        assert pool.allocated == 2
        assert pool.recycled == 1
        assert pool.reused == 1


class TestCachedUdpBuilder:
    KWARGS = dict(
        src_mac=MacAddress("02:00:00:00:00:01"),
        dst_mac=MacAddress("02:00:00:00:00:02"),
        src_ip=Ipv4Address("10.0.0.1"),
        dst_ip=Ipv4Address("10.0.0.2"),
        src_port=30001,
        dst_port=8080,
    )

    def test_cached_build_shares_headers(self):
        builder = CachedUdpBuilder()
        first = builder.build(payload=None, payload_len=64, **self.KWARGS)
        second = builder.build(payload=None, payload_len=64, **self.KWARGS)
        assert second.headers is first.headers
        assert second.packet_id != first.packet_id

    def test_payload_len_is_part_of_the_key(self):
        builder = CachedUdpBuilder()
        small = builder.build(payload=None, payload_len=64, **self.KWARGS)
        large = builder.build(payload=None, payload_len=1400, **self.KWARGS)
        assert small.headers is not large.headers
        assert large.wire_len - small.wire_len == 1400 - 64

    def test_matches_uncached_builder(self):
        from repro.stack.egress import build_udp_packet

        cached = CachedUdpBuilder().build(
            payload="x", payload_len=200, created_at=5, **self.KWARGS)
        plain = build_udp_packet(
            payload="x", payload_len=200, created_at=5, **self.KWARGS)
        assert cached.headers == plain.headers
        assert cached.wire_len == plain.wire_len
        assert isinstance(cached.l4, UdpHeader)
