"""Loss-recovery tests: backoff schedule units and the closed-loop
deadlock regressions (the bug this subsystem exists to fix).

Pre-recovery, a single lost request (or reply) permanently shrank a
memaslap window and wedged wrk2's single connection; a window's worth of
losses stalled the client at zero completions for the rest of the run.
"""

import pytest

from repro.apps.memcached import MemaslapClient, MemcachedServer
from repro.apps.sockperf import SockperfUdpClient, SockperfUdpServer
from repro.apps.webserver import NginxServer, Wrk2Client
from repro.bench.testbed import build_testbed
from repro.faults import (
    FaultInjector,
    FaultPlan,
    RecoveryStats,
    RetryPolicy,
    backoff_deadline_ns,
    merge_recovery,
)
from repro.faults.recovery import RetryTracker
from repro.sim.rng import SeededRng
from repro.sim.units import MS, US

pytestmark = pytest.mark.faults


class TestBackoffSchedule:
    def test_exponential_without_jitter(self):
        policy = RetryPolicy(timeout_ns=1000, backoff_factor=2.0,
                             jitter_frac=0.0)
        rng = SeededRng(1)
        assert [backoff_deadline_ns(policy, k, rng) for k in range(4)] == \
            [1000, 2000, 4000, 8000]

    def test_jitter_bounded_and_seed_frozen(self):
        policy = RetryPolicy(timeout_ns=10_000, backoff_factor=2.0,
                             jitter_frac=0.1)
        deadlines = [backoff_deadline_ns(policy, k, SeededRng(42))
                     for k in range(6)]
        for k, deadline in enumerate(deadlines):
            base = 10_000 * 2 ** k
            assert base * 0.9 <= deadline <= base * 1.1
        # Same seed, same stream position => identical schedule.
        assert deadlines == [backoff_deadline_ns(policy, k, SeededRng(42))
                             for k in range(6)]

    def test_deadline_floor_is_one_ns(self):
        policy = RetryPolicy(timeout_ns=0, jitter_frac=0.0)
        assert backoff_deadline_ns(policy, 0, SeededRng(1)) == 1

    def test_tracker_exhaustion(self):
        tracker = RetryTracker(RetryPolicy(max_retries=3), SeededRng(1), "t")
        assert not tracker.exhausted(2)
        assert tracker.exhausted(3)

    def test_merge_recovery_totals(self):
        a = RecoveryStats("a", sent=10, retries=2, timeouts=3, gave_up=1)
        b = RecoveryStats("b", retries=1, duplicates=4)
        assert merge_recovery([a, b]) == {
            "retries_total": 3, "timeouts_total": 3,
            "gave_up": 1, "duplicates": 4}
        assert merge_recovery([]) == {
            "retries_total": 0, "timeouts_total": 0,
            "gave_up": 0, "duplicates": 0}

    def test_stats_round_trip(self):
        stats = RecoveryStats("x", sent=5, retries=1, timeouts=2,
                              gave_up=3, duplicates=4)
        assert RecoveryStats.from_dict(stats.to_dict()) == stats


def _memaslap_under_burst(retry: bool):
    """A windowed memaslap run through a mid-run 2x ring-capacity burst."""
    testbed = build_testbed()
    plan = FaultPlan.parse("burst@20ms x2; retries=5; timeout=2ms")
    injector = FaultInjector(plan, testbed).install()
    srv = testbed.add_server_container("srv", "10.0.0.10")
    cli = testbed.add_client_container("cli", "10.0.0.100")
    MemcachedServer(srv, core_id=1)
    kwargs = {}
    if retry:
        kwargs = dict(retry=plan.retry, retry_rng=testbed.rng.fork("retry"))
    client = MemaslapClient(testbed.sim, testbed.client, testbed.overlay, cli,
                            "10.0.0.10", window=4,
                            rng=testbed.rng.fork("memaslap"), **kwargs)
    client.start()
    testbed.sim.run(until=25 * MS)
    after_burst = client.completed.count
    testbed.sim.run(until=80 * MS)
    return injector, client, after_burst, client.completed.count


class TestMemaslapBurstRegression:
    def test_without_recovery_the_window_deadlocks(self):
        """Pre-fix behaviour: the burst eats the in-flight window and the
        closed loop never issues another request."""
        _injector, client, after_burst, at_end = _memaslap_under_burst(
            retry=False)
        assert after_burst > 0           # ran fine until the burst
        assert at_end == after_burst     # ...then zero completions forever
        assert client.inflight == client.window  # all slots stuck in-flight

    def test_with_recovery_retries_refill_the_window(self):
        injector, client, after_burst, at_end = _memaslap_under_burst(
            retry=True)
        assert at_end > after_burst      # the run kept completing
        stats = client.recovery
        assert stats.retries > 0
        assert stats.gave_up == 0
        assert injector.ledger.balanced

    def test_give_up_refills_the_window_slot(self):
        """Even when the retry budget is exhausted, the closed loop
        keeps running: give-up re-issues a fresh op in the slot."""
        testbed = build_testbed()
        # 100% rx loss from 10ms on: every request after that is lost and
        # every retry of it is lost too, so ops exhaust their budget.
        plan = FaultPlan.parse(
            "loss:wire:1.0@10ms-1s; retries=2; timeout=1ms; jitter=0")
        FaultInjector(plan, testbed).install()
        srv = testbed.add_server_container("srv", "10.0.0.10")
        cli = testbed.add_client_container("cli", "10.0.0.100")
        MemcachedServer(srv, core_id=1)
        client = MemaslapClient(
            testbed.sim, testbed.client, testbed.overlay, cli, "10.0.0.10",
            window=4, rng=testbed.rng.fork("memaslap"),
            retry=plan.retry, retry_rng=testbed.rng.fork("retry"))
        client.start()
        testbed.sim.run(until=60 * MS)
        stats = client.recovery
        assert stats.gave_up > 0
        assert client.inflight == client.window  # window still full


class TestWrk2WedgeRegression:
    def _run(self, retry: bool):
        testbed = build_testbed()
        # A total-loss window long enough to eat the outstanding request.
        plan = FaultPlan.parse(
            "loss:wire:1.0@20ms-20.2ms; retries=5; timeout=2ms")
        FaultInjector(plan, testbed).install()
        srv = testbed.add_server_container("srv", "10.0.0.10")
        cli = testbed.add_client_container("cli", "10.0.0.100")
        NginxServer(srv, core_id=1)
        kwargs = {}
        if retry:
            kwargs = dict(retry=plan.retry,
                          retry_rng=testbed.rng.fork("retry"))
        client = Wrk2Client(testbed.sim, testbed.client, testbed.overlay,
                            cli, "10.0.0.10", rate_rps=2_000,
                            latency_from="sent", **kwargs)
        testbed.sim.run(until=25 * MS)
        after_loss = client.completed.count
        testbed.sim.run(until=60 * MS)
        return client, after_loss, client.completed.count

    def test_without_recovery_the_connection_wedges(self):
        client, after_loss, at_end = self._run(retry=False)
        assert after_loss > 0
        assert at_end == after_loss          # wedged for the rest of the run
        assert client._outstanding is not None

    def test_with_recovery_the_connection_keeps_flowing(self):
        client, after_loss, at_end = self._run(retry=True)
        assert at_end > after_loss
        assert client.recovery.retries > 0
        assert client.recovery.gave_up == 0


class TestSockperfDuplicates:
    def test_retransmit_race_counts_duplicates_not_double_replies(self):
        """A timeout shorter than the RTT forces retransmits whose
        replies race the originals; the late copies must be counted as
        duplicates, never recorded as extra samples."""
        testbed = build_testbed()
        plan = FaultPlan.parse("retries=2; timeout=10us; jitter=0")
        FaultInjector(plan, testbed).install()
        srv = testbed.add_server_container("srv", "10.0.0.10")
        cli = testbed.add_client_container("cli", "10.0.0.100")
        SockperfUdpServer(srv, 5000, core_id=1)
        client = SockperfUdpClient(
            testbed.sim, testbed.client, testbed.overlay, cli,
            "10.0.0.10", 5000, rate_pps=1_000, src_port=30001,
            retry=plan.retry, retry_rng=testbed.rng.fork("retry"))
        testbed.sim.run(until=20 * MS)
        stats = client.recovery
        assert stats.retries > 0
        assert stats.duplicates > 0
        assert client.replies == len(client.recorder)
        # One recorded sample per ping, not per copy received.
        assert client.replies < stats.sent + stats.retries

    def test_recovered_ping_reports_loss_inflated_latency(self):
        """A retransmitted ping keeps its original sent_at: the sample
        includes the full timeout + retry delay."""
        testbed = build_testbed()
        plan = FaultPlan.parse(
            "loss:wire:1.0@10ms-10.1ms; retries=5; timeout=1ms; jitter=0")
        FaultInjector(plan, testbed).install()
        srv = testbed.add_server_container("srv", "10.0.0.10")
        cli = testbed.add_client_container("cli", "10.0.0.100")
        SockperfUdpServer(srv, 5000, core_id=1)
        client = SockperfUdpClient(
            testbed.sim, testbed.client, testbed.overlay, cli,
            "10.0.0.10", 5000, rate_pps=1_000, src_port=30001,
            retry=plan.retry, retry_rng=testbed.rng.fork("retry"))
        testbed.sim.run(until=30 * MS)
        assert client.recovery.retries > 0
        # RTT/2 of a recovered ping >= timeout/2 >> the normal ~25us.
        assert client.recorder.summary().max_ns > 500 * US
