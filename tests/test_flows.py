"""Unit tests for the sampled flow-export pipeline's building blocks.

Sampler determinism, cache expiry/eviction accounting, record serde,
sink round-trips, the SQLite store's schema gate, the offline queries,
and the Scenario ``with_flows`` builders.  The cross-shard determinism
contract lives in ``test_flows_determinism.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.flows import (
    FLOW_SCHEMA_VERSION,
    FlowCache,
    FlowExportConfig,
    FlowRecord,
    FlowSampler,
    FlowStore,
    JsonlSink,
    MemorySink,
    SqliteSink,
    export_flows,
    flow_record_digest,
    merge_flow_blocks,
    normalize_records,
    open_sink,
)
from repro.flows.query import (
    class_breakdown,
    diff_runs,
    link_utilization,
    load_records,
    run_query,
    top_flows,
)
from repro.scenario import ClusterScenario, Scenario


# ----------------------------------------------------------------------
# Sampler
# ----------------------------------------------------------------------
class TestFlowSampler:
    def test_exact_one_in_n_per_site(self):
        sampler = FlowSampler(rate=8, seed=3, scope="server")
        hits = sum(sampler.take("ring0") for _ in range(800))
        assert hits == 100
        assert sampler.seen == 800 and sampler.sampled == 100

    def test_rate_one_samples_everything(self):
        sampler = FlowSampler(rate=1, seed=0, scope="s")
        assert all(sampler.take("x") for _ in range(10))

    def test_deterministic_per_seed_and_site(self):
        a = FlowSampler(rate=16, seed=7, scope="h0")
        b = FlowSampler(rate=16, seed=7, scope="h0")
        picks_a = [a.take("ring") for _ in range(64)]
        picks_b = [b.take("ring") for _ in range(64)]
        assert picks_a == picks_b

    def test_phase_varies_with_seed_and_site(self):
        sampler = FlowSampler(rate=64, seed=1, scope="h0")
        phases = {sampler.phase(f"site{i}") for i in range(32)}
        assert len(phases) > 1  # sites don't all fire in lockstep
        other = FlowSampler(rate=64, seed=2, scope="h0")
        assert any(sampler.phase(f"site{i}") != other.phase(f"site{i}")
                   for i in range(32))

    def test_counters_shape(self):
        sampler = FlowSampler(rate=4, seed=0, scope="s")
        for _ in range(8):
            sampler.take("a")
        sampler.take("b")
        counters = sampler.counters()
        assert counters["seen"] == 9
        assert counters["rate"] == 4
        assert counters["sites"] == 2


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------
class TestFlowRecord:
    def _record(self):
        r = FlowRecord("server", "10.0.0.1", "10.0.0.2", 1234, 80, 17, "hi",
                       first_ns=100)
        r.fold(200, 64, "ring0", latency_ns=50)
        r.fold(150, 32, "ring0", drops=1)
        r.fold_site("link:a-b", 64)
        return r

    def test_fold_accounting(self):
        r = self._record()
        assert (r.packets, r.bytes, r.drops) == (2, 96, 1)
        assert r.first_ns == 100 and r.last_ns == 200
        assert r.latency_sum_ns == 50 and r.latency_samples == 1
        assert r.sites["ring0"] == [2, 96, 1]
        assert r.sites["link:a-b"] == [1, 64, 0]

    def test_dict_roundtrip(self):
        r = self._record()
        r.reason = "idle"
        clone = FlowRecord.from_dict(r.to_dict())
        assert clone.to_dict() == r.to_dict()

    def test_schema_mismatch_rejected(self):
        data = self._record().to_dict()
        data["schema"] = FLOW_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            FlowRecord.from_dict(data)

    def test_digest_is_order_invariant(self):
        a, b = self._record().to_dict(), self._record().to_dict()
        b["src"] = "10.0.0.9"
        assert flow_record_digest([a, b]) == flow_record_digest([b, a])
        assert normalize_records([b, a]) == normalize_records([a, b])


# ----------------------------------------------------------------------
# Cache
# ----------------------------------------------------------------------
class TestFlowCache:
    KEY = ("server", "a", "b", 1, 2, 17, "hi")

    def _key(self, i):
        return ("server", f"src{i}", "b", 1, 2, 17, "lo")

    def test_fold_creates_then_updates(self):
        cache = FlowCache(max_flows=4, active_timeout_ns=1000,
                          idle_timeout_ns=100)
        cache.fold(self.KEY, 10, 64, "ring")
        cache.fold(self.KEY, 20, 64, "ring")
        assert cache.counters["flows_created"] == 1
        assert cache.counters["folded"] == 2

    def test_lru_eviction_order_and_reason(self):
        cache = FlowCache(max_flows=2, active_timeout_ns=10**9,
                          idle_timeout_ns=10**9)
        cache.fold(self._key(0), 10, 1, "s")
        cache.fold(self._key(1), 11, 1, "s")
        cache.fold(self._key(0), 12, 1, "s")  # refresh 0: 1 is now LRU
        cache.fold(self._key(2), 13, 1, "s")  # evicts 1
        evicted = cache.drain()
        assert len(evicted) == 1
        assert evicted[0].src == "src1"
        assert evicted[0].reason == "evict"
        assert cache.counters["evicted"] == 1

    def test_idle_and_active_expiry(self):
        cache = FlowCache(max_flows=16, active_timeout_ns=1000,
                          idle_timeout_ns=200)
        cache.fold(self._key(0), 0, 1, "s")
        cache.fold(self._key(1), 0, 1, "s")
        for now in range(0, 1300, 100):
            cache.fold(self._key(1), now, 1, "s")  # 1 stays hot
            cache.expire(now)
        reasons = {r.src: r.reason for r in cache.drain()}
        assert reasons["src0"] == "idle"
        assert reasons["src1"] == "active"
        assert cache.counters["expired_idle"] >= 1
        assert cache.counters["expired_active"] >= 1

    def test_flush_all_final(self):
        cache = FlowCache(max_flows=8, active_timeout_ns=10**9,
                          idle_timeout_ns=10**9)
        cache.fold(self._key(0), 5, 1, "s")
        cache.flush_all()
        records = cache.drain()
        assert [r.reason for r in records] == ["final"]
        assert cache.counters["flushed_final"] == 1
        assert cache.drain() == []  # drained once, gone

    def test_extra_sites_count_packet_once(self):
        cache = FlowCache(max_flows=8, active_timeout_ns=10**9,
                          idle_timeout_ns=10**9)
        cache.fold(self._key(0), 5, 100, "link:a",
                   extra_sites=("link:b", "link:c"))
        cache.flush_all()
        record = cache.drain()[0].to_dict()
        assert record["packets"] == 1
        assert record["sites"]["link:a"] == [1, 100, 0]
        assert record["sites"]["link:b"] == [1, 100, 0]
        assert record["sites"]["link:c"] == [1, 100, 0]


# ----------------------------------------------------------------------
# Config
# ----------------------------------------------------------------------
class TestFlowExportConfig:
    def test_defaults_and_roundtrip(self):
        config = FlowExportConfig()
        assert config.sample_rate == 64
        assert FlowExportConfig.from_dict(config.to_dict()) == config
        assert FlowExportConfig.from_dict(None) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowExportConfig(sample_rate=0)
        with pytest.raises(ValueError):
            FlowExportConfig(max_flows=0)
        with pytest.raises(ValueError):
            FlowExportConfig(idle_timeout_ns=-1)

    def test_schema_gate(self):
        data = FlowExportConfig().to_dict()
        data["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            FlowExportConfig.from_dict(data)


# ----------------------------------------------------------------------
# Sinks and store
# ----------------------------------------------------------------------
def _block(n=5):
    records = []
    for i in range(n):
        r = FlowRecord("server", f"10.0.0.{i}", "10.0.0.99", 1000 + i, 80,
                       17, "hi" if i % 2 else "lo", first_ns=i * 10)
        r.fold(i * 10 + 5, 64 * (i + 1), "ring0", latency_ns=100 * (i + 1))
        r.fold_site(f"link:l{i % 2}", 64 * (i + 1))
        r.reason = "final"
        records.append(r.to_dict())
    return merge_flow_blocks(
        [{"scope": "server", "records": records,
          "sampler": {"seen": 100, "sampled": n, "sites": 1},
          "cache": {"folded": n}}],
        sample_rate=8)


class TestSinks:
    def test_open_sink_dispatch(self, tmp_path):
        assert isinstance(open_sink("mem"), MemorySink)
        assert isinstance(open_sink(":memory:"), MemorySink)
        assert isinstance(open_sink(tmp_path / "x.jsonl"), JsonlSink)
        assert isinstance(open_sink(tmp_path / "x.sqlite"), SqliteSink)
        assert isinstance(open_sink(tmp_path / "x.db"), SqliteSink)
        with pytest.raises(ValueError, match="sink"):
            open_sink(tmp_path / "x.csv")

    def test_memory_sink_export(self):
        flows = _block()
        sink = export_flows(flows, "mem", label="t")
        assert len(sink.records) == flows["record_count"]
        assert sink.meta["label"] == "t"
        assert "records" not in sink.meta

    def test_jsonl_roundtrip(self, tmp_path):
        flows = _block()
        path = tmp_path / "run.jsonl"
        export_flows(flows, path, label="t")
        first = json.loads(path.read_text().splitlines()[0])
        assert first["kind"] == "meta" and first["label"] == "t"
        assert flow_record_digest(load_records(path)) == \
            flows["record_digest"]

    def test_sqlite_roundtrip(self, tmp_path):
        flows = _block()
        path = tmp_path / "run.sqlite"
        export_flows(flows, path, label="t")
        assert flow_record_digest(load_records(path)) == \
            flows["record_digest"]

    def test_backends_agree(self, tmp_path):
        flows = _block()
        export_flows(flows, tmp_path / "a.jsonl")
        export_flows(flows, tmp_path / "b.sqlite")
        assert load_records(tmp_path / "a.jsonl") == \
            load_records(tmp_path / "b.sqlite")


class TestFlowStore:
    def test_schema_version_gate(self, tmp_path):
        path = tmp_path / "run.sqlite"
        with FlowStore(path) as store:
            store.begin_run(label="a")
        import sqlite3
        db = sqlite3.connect(path)
        db.execute("UPDATE meta SET value='99' WHERE key='schema_version'")
        db.commit()
        db.close()
        with pytest.raises(ValueError, match="schema"):
            FlowStore(path)

    def test_multiple_runs_and_latest(self, tmp_path):
        flows = _block()
        path = tmp_path / "run.sqlite"
        with FlowStore(path) as store:
            first = store.begin_run(label="first")
            store.add_records(first, flows["records"][:2])
            second = store.begin_run(label="second")
            store.add_records(second, flows["records"])
            assert [r["label"] for r in store.runs()] == ["first", "second"]
            assert store.latest_run() == second
            assert len(store.records(first)) == 2
            assert len(store.records()) == flows["record_count"]


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
class TestQueries:
    def test_top_flows_merges_split_records(self):
        flows = _block()
        records = flows["records"]
        # Split one flow into two records (active-timeout style).
        split = dict(records[0])
        split["first_ns"] = split["last_ns"] + 1
        split["last_ns"] = split["first_ns"] + 5
        top = top_flows(records + [split], k=3, by="packets")
        assert len(top) == 3
        merged = [t for t in top
                  if (t["src"], t["src_port"]) ==
                  (records[0]["src"], records[0]["src_port"])]
        assert merged and merged[0]["packets"] == records[0]["packets"] * 2

    def test_class_breakdown(self):
        classes = {e["cls"]: e for e in class_breakdown(_block()["records"])}
        assert set(classes) == {"hi", "lo"}
        assert classes["hi"]["flows"] == 2 and classes["lo"]["flows"] == 3
        assert classes["hi"]["latency_mean_ns"] > 0

    def test_link_utilization(self):
        links = link_utilization(_block()["records"])
        assert [l["site"] for l in links] == ["link:l0", "link:l1"]
        assert links[0]["bytes"] > links[1]["bytes"]

    def test_diff_runs(self):
        a = _block(3)["records"]
        b = _block(5)["records"]
        diff = diff_runs(a, b)
        assert diff["a"]["flows"] == 3 and diff["b"]["flows"] == 5
        assert len(diff["only_b"]) == 2 and not diff["only_a"]

    def test_run_query_dispatch(self, tmp_path):
        flows = _block()
        path = tmp_path / "run.sqlite"
        export_flows(flows, path)
        assert "top 2 flows" in run_query("top:2", path)
        assert "per-class" in run_query("classes", path)
        assert "link:" in run_query("links", path)
        assert "diff" in run_query("diff", path, path)
        with pytest.raises(ValueError, match="needs 2"):
            run_query("diff", path)
        with pytest.raises(ValueError, match="unknown flow query"):
            run_query("nope", path)


# ----------------------------------------------------------------------
# Scenario builders
# ----------------------------------------------------------------------
class TestWithFlows:
    def test_scenario_builder(self):
        scenario = Scenario().with_flows(32, idle_timeout_ns=1000)
        config = scenario.build().flow_export
        assert config.sample_rate == 32 and config.idle_timeout_ns == 1000
        assert scenario.with_flows(0).build().flow_export is None

    def test_cluster_builder(self):
        cluster = ClusterScenario(4).with_flows(16)
        assert cluster.build().flow_export.sample_rate == 16

    def test_explicit_config_excludes_knobs(self):
        config = FlowExportConfig(sample_rate=4)
        assert Scenario().with_flows(config=config).build().flow_export \
            is config
        with pytest.raises(TypeError):
            Scenario().with_flows(config=config, max_flows=8)
        with pytest.raises(TypeError):
            Scenario().with_flows(0, max_flows=8)
