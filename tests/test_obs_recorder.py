"""Unit tests for the flight-recorder ring buffer (`repro.obs.recorder`)."""

import pytest

from repro.obs.recorder import FlightRecorder, TraceEvent


class TestRecording:
    def test_event_kinds_round_trip(self):
        rec = FlightRecorder(16)
        rec.begin(10, "cpu0", "softirq")
        rec.end(20, "cpu0", "softirq")
        rec.complete(5, 7, "queue:ring", "wait", {"skb": 1})
        rec.instant(12, "drops", "ring")
        rec.counter(15, "depth:ring", "depth", 3.0)
        phases = [e.ph for e in rec.events()]
        assert phases == ["B", "E", "X", "i", "C"]
        assert len(rec) == 5 and rec.recorded == 5 and rec.evicted == 0
        x = rec.events()[2]
        assert (x.ts, x.dur, x.track, x.name) == (5, 7, "queue:ring", "wait")
        assert x.args == {"skb": 1}
        c = rec.events()[4]
        assert c.args == {"value": 3.0}

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(0)
        with pytest.raises(ValueError):
            FlightRecorder(-5)


class TestWraparound:
    def test_ring_keeps_newest_and_counts_evicted(self):
        rec = FlightRecorder(4)
        for i in range(10):
            rec.instant(i, "t", f"e{i}")
        assert len(rec) == 4
        assert rec.recorded == 10
        assert rec.evicted == 6
        assert [e.name for e in rec.events()] == ["e6", "e7", "e8", "e9"]

    def test_clear_resets_counters(self):
        rec = FlightRecorder(2)
        for i in range(5):
            rec.instant(i, "t", "e")
        rec.clear()
        assert len(rec) == 0 and rec.recorded == 0 and rec.evicted == 0


class TestTracks:
    def test_first_appearance_order(self):
        rec = FlightRecorder(16)
        rec.instant(0, "b", "x")
        rec.instant(1, "a", "x")
        rec.instant(2, "b", "x")
        rec.instant(3, "c", "x")
        assert rec.tracks() == ["b", "a", "c"]


class TestSpans:
    def test_nested_spans_pair_lifo(self):
        rec = FlightRecorder(16)
        rec.begin(0, "cpu0", "outer")
        rec.begin(2, "cpu0", "inner")
        rec.end(5, "cpu0", "inner")
        rec.end(9, "cpu0", "outer")
        assert rec.spans() == [("cpu0", "inner", 2, 5),
                               ("cpu0", "outer", 0, 9)]

    def test_spans_are_per_track(self):
        rec = FlightRecorder(16)
        rec.begin(0, "cpu0", "a")
        rec.begin(1, "cpu1", "b")
        rec.end(2, "cpu0", "a")
        rec.end(3, "cpu1", "b")
        assert rec.spans("cpu0") == [("cpu0", "a", 0, 2)]
        assert rec.spans("cpu1") == [("cpu1", "b", 1, 3)]

    def test_unmatched_begin_is_omitted(self):
        rec = FlightRecorder(16)
        rec.begin(0, "cpu0", "open-at-exit")
        assert rec.spans() == []

    def test_mismatched_end_raises(self):
        rec = FlightRecorder(16)
        rec.begin(0, "cpu0", "a")
        rec.end(1, "cpu0", "b")
        with pytest.raises(ValueError):
            rec.spans()

    def test_end_whose_begin_was_evicted_is_skipped(self):
        # Wrap the ring so only the E of the first span survives: the
        # orphaned E must be ignored, later spans still pair.
        rec = FlightRecorder(3)
        rec.begin(0, "cpu0", "lost")
        rec.end(1, "cpu0", "lost")      # begin evicted below
        rec.begin(2, "cpu0", "kept")
        rec.end(3, "cpu0", "kept")
        assert rec.evicted == 1
        assert [e.name for e in rec.events()] == ["lost", "kept", "kept"]
        assert rec.spans() == [("cpu0", "kept", 2, 3)]


class TestTraceEvent:
    def test_slots(self):
        event = TraceEvent("i", 0, None, "t", "e", None)
        with pytest.raises(AttributeError):
            event.extra = 1
