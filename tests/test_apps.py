"""Tests for the application models: sockperf, memcached, nginx/wrk2."""

import pytest

from repro.apps.memcached import MemaslapClient, MemcachedServer
from repro.apps.sockperf import (
    SockperfTcpFlood,
    SockperfUdpClient,
    SockperfUdpFlood,
    SockperfUdpServer,
)
from repro.apps.webserver import NginxServer, Wrk2Client
from repro.bench.testbed import build_testbed
from repro.sim.units import MS, SEC


def make_pair(testbed, server_ip="10.0.0.10", client_ip="10.0.0.100"):
    server = testbed.add_server_container("srv", server_ip)
    client = testbed.add_client_container("cli", client_ip)
    return server, client


class TestSockperf:
    def test_pingpong_measures_all_replies(self):
        testbed = build_testbed()
        server_cont, client_cont = make_pair(testbed)
        SockperfUdpServer(server_cont, 5000, core_id=1)
        client = SockperfUdpClient(
            testbed.sim, testbed.client, testbed.overlay, client_cont,
            "10.0.0.10", 5000, rate_pps=2_000, src_port=30001)
        testbed.sim.run(until=50 * MS)
        assert client.sent == pytest.approx(100, abs=2)
        assert client.replies >= client.sent - 3
        assert len(client.recorder) == client.replies

    def test_pingpong_latency_is_positive_and_sane(self):
        testbed = build_testbed()
        server_cont, client_cont = make_pair(testbed)
        SockperfUdpServer(server_cont, 5000, core_id=1)
        client = SockperfUdpClient(
            testbed.sim, testbed.client, testbed.overlay, client_cont,
            "10.0.0.10", 5000, rate_pps=1_000, src_port=30001)
        testbed.sim.run(until=50 * MS)
        summary = client.recorder.summary()
        assert 1_000 < summary.min_ns < 100_000

    def test_client_stop(self):
        testbed = build_testbed()
        server_cont, client_cont = make_pair(testbed)
        SockperfUdpServer(server_cont, 5000, core_id=1)
        client = SockperfUdpClient(
            testbed.sim, testbed.client, testbed.overlay, client_cont,
            "10.0.0.10", 5000, rate_pps=1_000, src_port=30001)
        testbed.sim.run(until=10 * MS)
        sent_at_stop = client.sent
        client.stop()
        testbed.sim.run(until=30 * MS)
        assert client.sent == sent_at_stop

    def test_flood_rate_is_exact_long_run(self):
        testbed = build_testbed()
        server_cont, client_cont = make_pair(testbed)
        SockperfUdpServer(server_cont, 5000, core_id=1, reply=False)
        flood = SockperfUdpFlood(
            testbed.sim, testbed.client, testbed.overlay, client_cont,
            "10.0.0.10", 5000, rate_pps=100_000, src_port=30002, burst=16)
        testbed.sim.run(until=100 * MS)
        assert flood.sent == pytest.approx(10_000, rel=0.01)

    def test_flood_burst_validation(self):
        testbed = build_testbed()
        _server, client_cont = make_pair(testbed)
        with pytest.raises(ValueError):
            SockperfUdpFlood(testbed.sim, testbed.client, testbed.overlay,
                             client_cont, "10.0.0.10", 5000,
                             rate_pps=1_000, burst=0)
        with pytest.raises(ValueError):
            SockperfUdpFlood(testbed.sim, testbed.client, testbed.overlay,
                             client_cont, "10.0.0.10", 5000, rate_pps=0)

    def test_tcp_flood_segments_and_reassembles(self):
        testbed = build_testbed()
        server_cont, client_cont = make_pair(testbed)
        endpoint = server_cont.tcp_endpoint(6000, core_id=1)
        flood = SockperfTcpFlood(
            testbed.sim, testbed.client, testbed.overlay, client_cont,
            "10.0.0.10", 6000, rate_msgs_per_sec=500, message_len=10_000,
            src_port=30003)
        testbed.sim.run(until=50 * MS)
        assert flood.sent_messages == pytest.approx(25, abs=2)
        assert endpoint.messages_delivered >= flood.sent_messages - 2
        # Each message was carried by multiple MTU segments.
        assert endpoint.bytes_received >= 10_000 * (flood.sent_messages - 2)


class TestMemcached:
    def _setup(self, busy=False):
        testbed = build_testbed()
        server_cont, client_cont = make_pair(testbed)
        server = MemcachedServer(server_cont, core_id=1)
        client = MemaslapClient(
            testbed.sim, testbed.client, testbed.overlay, client_cont,
            "10.0.0.10", window=4, rng=testbed.rng.fork("m"))
        return testbed, server, client

    def test_closed_loop_keeps_window_full(self):
        testbed, server, client = self._setup()
        client.start()
        testbed.sim.run(until=50 * MS)
        assert client.inflight == 4
        assert client.completed.count > 100

    def test_get_set_mix(self):
        testbed, server, client = self._setup()
        client.start()
        testbed.sim.run(until=100 * MS)
        total = server.gets + server.sets
        assert total > 500
        assert 0.8 < server.gets / total < 0.97

    def test_sets_populate_store_and_gets_hit(self):
        testbed, server, client = self._setup()
        client.start()
        testbed.sim.run(until=200 * MS)
        assert server.store  # sets landed
        assert server.misses < server.gets  # zipf keys re-hit stored keys

    def test_start_twice_rejected(self):
        _testbed, _server, client = self._setup()
        client.start()
        with pytest.raises(RuntimeError):
            client.start()

    def test_window_validation(self):
        testbed = build_testbed()
        _server, client_cont = make_pair(testbed)
        with pytest.raises(ValueError):
            MemaslapClient(testbed.sim, testbed.client, testbed.overlay,
                           client_cont, "10.0.0.10", window=0)

    def test_latency_recorded_per_op(self):
        testbed, _server, client = self._setup()
        client.start()
        testbed.sim.run(until=50 * MS)
        assert len(client.recorder) == client.completed.count


class TestWebServer:
    def test_request_response_loop(self):
        testbed = build_testbed()
        server_cont, client_cont = make_pair(testbed)
        server = NginxServer(server_cont, core_id=1)
        client = Wrk2Client(
            testbed.sim, testbed.client, testbed.overlay, client_cont,
            "10.0.0.10", rate_rps=2_000)
        testbed.sim.run(until=50 * MS)
        assert server.requests_served == pytest.approx(100, abs=3)
        assert client.completed.count == server.requests_served

    def test_single_connection_serializes(self):
        testbed = build_testbed()
        server_cont, client_cont = make_pair(testbed)
        NginxServer(server_cont, core_id=1, parse_work_ns=100_000)
        # 100us of server work per request means a single connection
        # cannot exceed ~10K rps even at a 40K target.
        client = Wrk2Client(
            testbed.sim, testbed.client, testbed.overlay, client_cont,
            "10.0.0.10", rate_rps=40_000, latency_from="sent")
        testbed.sim.run(until=100 * MS)
        achieved = client.completed.count * SEC / (100 * MS)
        assert achieved < 11_000

    def test_coordinated_omission_correction(self):
        testbed = build_testbed()
        server_cont, client_cont = make_pair(testbed)
        NginxServer(server_cont, core_id=1, parse_work_ns=200_000)
        client = Wrk2Client(
            testbed.sim, testbed.client, testbed.overlay, client_cont,
            "10.0.0.10", rate_rps=20_000, latency_from="intended")
        testbed.sim.run(until=60 * MS)
        # With CO correction the reported latency reflects the backlog
        # (server can only do ~5K of the 20K offered): much larger than
        # a single round trip.
        assert client.recorder.summary().p99_ns > 1_000_000

    def test_latency_from_validation(self):
        testbed = build_testbed()
        _server, client_cont = make_pair(testbed)
        with pytest.raises(ValueError):
            Wrk2Client(testbed.sim, testbed.client, testbed.overlay,
                       client_cont, "10.0.0.10", rate_rps=1_000,
                       latency_from="bogus")
        with pytest.raises(ValueError):
            Wrk2Client(testbed.sim, testbed.client, testbed.overlay,
                       client_cont, "10.0.0.10", rate_rps=0)


class TestRepeatRunDeterminism:
    """Each client draws its op sequence from its own counter and its
    own rng fork, so two in-process runs of the same config are
    bit-identical — no hidden global state (itertools counters at module
    scope, shared rng streams) leaks between runs."""

    @pytest.mark.slow
    def test_memcached_benchmark_repeats_identically(self):
        from repro.bench.applications import (
            AppBenchConfig,
            run_memcached_benchmark,
        )
        config = AppBenchConfig(busy=False, duration_ns=80 * MS,
                                warmup_ns=20 * MS)
        first = run_memcached_benchmark(config)
        second = run_memcached_benchmark(config)
        assert first.completed == second.completed
        assert first.throughput_per_sec == second.throughput_per_sec
        assert first.latency == second.latency
        assert first.drops == second.drops

    @pytest.mark.slow
    def test_webserver_benchmark_repeats_identically(self):
        from repro.bench.applications import (
            AppBenchConfig,
            run_webserver_benchmark,
        )
        config = AppBenchConfig(busy=False, duration_ns=80 * MS,
                                warmup_ns=20 * MS)
        first = run_webserver_benchmark(config)
        second = run_webserver_benchmark(config)
        assert first.completed == second.completed
        assert first.latency == second.latency
        assert first.drops == second.drops
