"""Tests for the PRISM priority database, classifier, procfs, and modes."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kernel.core import Kernel
from repro.packet.addr import Ipv4Address, MacAddress
from repro.packet.skb import PRIORITY_HIGH, SKBuff
from repro.prism.classifier import PriorityClassifier
from repro.prism.mode import StackMode
from repro.prism.priority_db import PriorityDatabase, PriorityRule
from repro.prism.procfs import ProcFs, ProcFsError
from repro.sim import Simulator
from repro.stack.egress import build_udp_packet


def make_packet(src="10.0.0.100", dst="10.0.0.10", sport=30001, dport=5000):
    return build_udp_packet(
        src_mac=MacAddress(1), dst_mac=MacAddress(2),
        src_ip=Ipv4Address(src), dst_ip=Ipv4Address(dst),
        src_port=sport, dst_port=dport, payload=None, payload_len=32)


class TestPriorityRule:
    def test_requires_ip_or_port(self):
        with pytest.raises(ValueError):
            PriorityRule()

    def test_invalid_port(self):
        with pytest.raises(ValueError):
            PriorityRule(port=0)
        with pytest.raises(ValueError):
            PriorityRule(port=70_000)

    def test_negative_level(self):
        with pytest.raises(ValueError):
            PriorityRule(port=80, level=-1)

    def test_matches_endpoint_wildcards(self):
        ip_rule = PriorityRule(ip=Ipv4Address("10.0.0.1"))
        port_rule = PriorityRule(port=80)
        both = PriorityRule(ip=Ipv4Address("10.0.0.1"), port=80)
        assert ip_rule.matches_endpoint(Ipv4Address("10.0.0.1"), 1234)
        assert not ip_rule.matches_endpoint(Ipv4Address("10.0.0.2"), 1234)
        assert port_rule.matches_endpoint(Ipv4Address("1.1.1.1"), 80)
        assert both.matches_endpoint(Ipv4Address("10.0.0.1"), 80)
        assert not both.matches_endpoint(Ipv4Address("10.0.0.1"), 81)


class TestPriorityDatabase:
    def test_classify_by_destination(self):
        db = PriorityDatabase()
        db.add_endpoint(ip="10.0.0.10", port=5000)
        assert db.classify_packet(make_packet()) == PRIORITY_HIGH

    def test_classify_by_source_covers_reply_direction(self):
        db = PriorityDatabase()
        db.add_endpoint(ip="10.0.0.10", port=5000)
        reply = make_packet(src="10.0.0.10", dst="10.0.0.100",
                            sport=5000, dport=30001)
        assert reply is not None
        assert db.classify_packet(reply) == PRIORITY_HIGH

    def test_no_match_returns_none(self):
        db = PriorityDatabase()
        db.add_endpoint(ip="10.0.0.10", port=5000)
        assert db.classify_packet(make_packet(dport=9999)) is None

    def test_empty_db_short_circuits(self):
        db = PriorityDatabase()
        assert db.classify_packet(make_packet()) is None

    def test_wildcard_port_rule(self):
        db = PriorityDatabase()
        db.add_endpoint(ip="10.0.0.10")
        assert db.classify_packet(make_packet(dport=4242)) == PRIORITY_HIGH

    def test_wildcard_ip_rule(self):
        db = PriorityDatabase()
        db.add_endpoint(port=5000)
        assert db.classify_packet(
            make_packet(dst="99.99.99.99")) == PRIORITY_HIGH

    def test_best_level_wins_across_endpoints(self):
        db = PriorityDatabase()
        db.add_endpoint(ip="10.0.0.10", port=5000, level=2)
        db.add_endpoint(port=30001, level=1)
        # src matches level 1, dst matches level 2 -> min = 1.
        assert db.classify_packet(make_packet()) == 1

    def test_remove_rule(self):
        db = PriorityDatabase()
        rule = db.add_endpoint(ip="10.0.0.10", port=5000)
        assert db.remove(rule)
        assert not db.remove(rule)
        assert db.classify_packet(make_packet()) is None

    def test_clear(self):
        db = PriorityDatabase()
        db.add_endpoint(port=80)
        db.clear()
        assert len(db) == 0

    def test_classify_encapsulated_uses_inner_headers(self):
        from repro.stack.egress import EncapInfo, apply_encap
        db = PriorityDatabase()
        db.add_endpoint(ip="10.0.0.10", port=5000)
        encap = EncapInfo(
            vni=42, outer_src_mac=MacAddress(3), outer_dst_mac=MacAddress(4),
            outer_src_ip=Ipv4Address("192.168.1.2"),
            outer_dst_ip=Ipv4Address("192.168.1.1"))
        outer = apply_encap(make_packet(), encap)
        assert db.classify_packet(outer) == PRIORITY_HIGH

    @given(st.integers(1, 65535), st.integers(1, 65535))
    def test_lookup_never_false_positive(self, rule_port, pkt_port):
        db = PriorityDatabase()
        db.add_endpoint(ip="10.0.0.10", port=rule_port)
        packet = make_packet(dport=pkt_port, sport=max(1, (pkt_port + 1) % 65536))
        level = db.classify_packet(packet)
        if rule_port not in (pkt_port, packet.inner_l4.src_port):
            assert level is None


class TestClassifier:
    def _setup(self):
        sim = Simulator()
        kernel = Kernel(sim, n_cpus=1)
        return kernel, PriorityClassifier(kernel.priority_db, kernel.costs)

    def _skb(self):
        return SKBuff(make_packet())

    def test_vanilla_mode_is_inert(self):
        kernel, classifier = self._setup()
        kernel.priority_db.add_endpoint(ip="10.0.0.10", port=5000)
        skb = self._skb()
        cost = classifier.classify(skb, StackMode.VANILLA)
        assert cost == 0
        assert not skb.classified

    def test_prism_mode_stamps_high(self):
        kernel, classifier = self._setup()
        kernel.priority_db.add_endpoint(ip="10.0.0.10", port=5000)
        skb = self._skb()
        cost = classifier.classify(skb, StackMode.PRISM_BATCH)
        assert cost == kernel.costs.priority_lookup_ns
        assert skb.is_high_priority
        assert classifier.classified_high == 1

    def test_unmatched_gets_best_effort_level(self):
        kernel, classifier = self._setup()
        kernel.priority_db.add_endpoint(ip="10.0.0.99", port=9999, level=2)
        skb = self._skb()
        classifier.classify(skb, StackMode.PRISM_SYNC)
        assert skb.classified
        assert skb.priority_level == 3  # lowest rule level + 1

    def test_classification_is_idempotent(self):
        kernel, classifier = self._setup()
        kernel.priority_db.add_endpoint(ip="10.0.0.10", port=5000)
        skb = self._skb()
        classifier.classify(skb, StackMode.PRISM_BATCH)
        assert classifier.classify(skb, StackMode.PRISM_BATCH) == 0


class TestProcFs:
    def _setup(self):
        state = {"mode": StackMode.VANILLA}
        db = PriorityDatabase()
        procfs = ProcFs(db, get_mode=lambda: state["mode"],
                        set_mode=lambda m: state.update(mode=m))
        return db, procfs, state

    def test_add_and_read_rules(self):
        db, procfs, _ = self._setup()
        procfs.write("/proc/prism/priority", "add 10.0.0.10 5000")
        assert len(db) == 1
        assert procfs.read("/proc/prism/priority") == "10.0.0.10 5000 0"

    def test_add_with_level_and_wildcards(self):
        db, procfs, _ = self._setup()
        procfs.write("/proc/prism/priority", "add * 80 1")
        procfs.write("/proc/prism/priority", "add 10.0.0.9 * 2")
        rules = db.rules
        assert rules[0].ip is None and rules[0].port == 80 and rules[0].level == 1
        assert rules[1].port is None and rules[1].level == 2

    def test_del_rule(self):
        _db, procfs, _ = self._setup()
        procfs.write("/proc/prism/priority", "add 10.0.0.10 5000")
        procfs.write("/proc/prism/priority", "del 10.0.0.10 5000")
        assert procfs.read("/proc/prism/priority") == ""

    def test_del_missing_rule_errors(self):
        _db, procfs, _ = self._setup()
        with pytest.raises(ProcFsError):
            procfs.write("/proc/prism/priority", "del 10.0.0.10 5000")

    def test_clear_command(self):
        db, procfs, _ = self._setup()
        procfs.write("/proc/prism/priority", "add 10.0.0.10 5000\nadd * 80")
        procfs.write("/proc/prism/priority", "clear")
        assert len(db) == 0

    def test_malformed_commands(self):
        _db, procfs, _ = self._setup()
        for bad in ("bogus 1 2", "add 10.0.0.1", "add 10.0.0.1 notaport"):
            with pytest.raises(ProcFsError):
                procfs.write("/proc/prism/priority", bad)

    def test_mode_switching(self):
        _db, procfs, state = self._setup()
        procfs.write("/proc/prism/mode", "sync")
        assert state["mode"] is StackMode.PRISM_SYNC
        assert procfs.read("/proc/prism/mode") == "prism-sync"
        procfs.write("/proc/prism/mode", "vanilla")
        assert state["mode"] is StackMode.VANILLA

    def test_bad_mode_errors(self):
        _db, procfs, _ = self._setup()
        with pytest.raises(ProcFsError):
            procfs.write("/proc/prism/mode", "warp-speed")

    def test_unknown_path(self):
        _db, procfs, _ = self._setup()
        with pytest.raises(ProcFsError):
            procfs.write("/proc/prism/nope", "x")
        with pytest.raises(ProcFsError):
            procfs.read("/proc/prism/nope")

    def test_paths_listing(self):
        _db, procfs, _ = self._setup()
        assert procfs.paths() == ["/proc/prism/mode", "/proc/prism/priority"]


class TestStackMode:
    def test_parse_canonical_names(self):
        assert StackMode.parse("vanilla") is StackMode.VANILLA
        assert StackMode.parse("prism-batch") is StackMode.PRISM_BATCH
        assert StackMode.parse("PRISM_SYNC") is StackMode.PRISM_SYNC

    def test_parse_aliases(self):
        assert StackMode.parse("batch") is StackMode.PRISM_BATCH
        assert StackMode.parse("sync") is StackMode.PRISM_SYNC
        assert StackMode.parse("prism") is StackMode.PRISM_SYNC

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            StackMode.parse("turbo")

    def test_is_prism(self):
        assert not StackMode.VANILLA.is_prism
        assert StackMode.PRISM_BATCH.is_prism
        assert StackMode.PRISM_SYNC.is_prism
