"""End-to-end integration tests: wire -> NIC -> 3 stages -> socket -> app."""

import pytest

from repro.apps.remote import RemoteRequestSender
from repro.apps.sockperf import PingRecord, SockperfUdpClient, SockperfUdpServer
from repro.bench.testbed import build_testbed
from repro.kernel.cpu import Work
from repro.prism.mode import StackMode
from repro.sim.units import MS, US


def make_overlay_testbed(mode=StackMode.VANILLA):
    testbed = build_testbed(mode=mode)
    server_cont = testbed.add_server_container("srv", "10.0.0.10")
    client_cont = testbed.add_client_container("cli", "10.0.0.100")
    return testbed, server_cont, client_cont


class TestOverlayDelivery:
    def test_single_packet_reaches_container_socket(self):
        testbed, server_cont, client_cont = make_overlay_testbed()
        socket = server_cont.udp_socket(5000, core_id=1)
        sender = RemoteRequestSender(testbed.client, testbed.overlay,
                                     client_cont, "10.0.0.10")
        sender.send_udp(src_port=40000, dst_port=5000,
                        payload="hello", payload_len=64,
                        created_at=testbed.sim.now)
        testbed.sim.run(until=5 * MS)
        assert len(socket.rcvbuf) == 1
        skb = socket.rcvbuf.dequeue()
        assert skb.packet.payload == "hello"
        # The skb's packet view is the decapsulated inner packet.
        assert str(skb.packet.ip.dst) == "10.0.0.10"
        assert skb.packet.l4.dst_port == 5000

    def test_packet_travels_all_three_stages(self):
        testbed, server_cont, client_cont = make_overlay_testbed()
        socket = server_cont.udp_socket(5000, core_id=1)
        sender = RemoteRequestSender(testbed.client, testbed.overlay,
                                     client_cont, "10.0.0.10")
        sender.send_udp(src_port=40000, dst_port=5000,
                        payload=None, payload_len=64)
        testbed.sim.run(until=5 * MS)
        skb = socket.rcvbuf.dequeue()
        # Devices saw it: NIC, vxlan (stage 2), container veth (stage 3).
        assert testbed.server.nic.rx_packets == 1
        assert testbed.server_overlay.vxlan.rx_packets == 1
        assert server_cont.veth.container_end.rx_packets == 1
        assert "rx_ring" in skb.marks
        assert "socket_enqueue" in skb.marks
        assert skb.marks["socket_enqueue"] > skb.marks["rx_ring"]

    def test_app_thread_receives_datagram(self):
        testbed, server_cont, client_cont = make_overlay_testbed()
        socket = server_cont.udp_socket(5000, core_id=1)
        got = []

        def app():
            skb = yield from socket.recv()
            got.append((testbed.sim.now, skb.packet.payload))
            yield Work(500)

        server_cont.spawn(app(), core_id=1)
        sender = RemoteRequestSender(testbed.client, testbed.overlay,
                                     client_cont, "10.0.0.10")
        sender.send_udp(src_port=40000, dst_port=5000,
                        payload="ping", payload_len=32)
        testbed.sim.run(until=5 * MS)
        assert len(got) == 1
        assert got[0][1] == "ping"
        assert got[0][0] > 0

    def test_unmatched_port_is_dropped_and_counted(self):
        testbed, server_cont, client_cont = make_overlay_testbed()
        server_cont.udp_socket(5000, core_id=1)
        sender = RemoteRequestSender(testbed.client, testbed.overlay,
                                     client_cont, "10.0.0.10")
        sender.send_udp(src_port=40000, dst_port=9999,
                        payload=None, payload_len=32)
        testbed.sim.run(until=5 * MS)
        drops = testbed.server.kernel.drops
        assert any("udp-unmatched" in name for name in drops)

    @pytest.mark.parametrize("mode", list(StackMode))
    def test_delivery_works_in_every_mode(self, mode):
        testbed, server_cont, client_cont = make_overlay_testbed(mode)
        if mode.is_prism:
            testbed.mark_high_priority("10.0.0.10", 5000)
        socket = server_cont.udp_socket(5000, core_id=1)
        sender = RemoteRequestSender(testbed.client, testbed.overlay,
                                     client_cont, "10.0.0.10")
        for _ in range(10):
            sender.send_udp(src_port=40000, dst_port=5000,
                            payload=None, payload_len=64)
        testbed.sim.run(until=5 * MS)
        assert len(socket.rcvbuf) == 10


class TestPingPong:
    def test_round_trip_latency_measured(self):
        testbed, server_cont, client_cont = make_overlay_testbed()
        SockperfUdpServer(server_cont, 5000, core_id=1)
        client = SockperfUdpClient(
            testbed.sim, testbed.client, testbed.overlay, client_cont,
            "10.0.0.10", 5000, rate_pps=1000, src_port=30001)
        testbed.sim.run(until=20 * MS)
        assert client.replies >= 15
        summary = client.recorder.summary()
        # Idle round trip should land in the tens of microseconds.
        assert 5 * US < summary.avg_ns < 200 * US

    def test_priority_classification_stamps_high(self):
        testbed, server_cont, client_cont = make_overlay_testbed(
            StackMode.PRISM_BATCH)
        testbed.mark_high_priority("10.0.0.10", 5000)
        socket = server_cont.udp_socket(5000, core_id=1)
        sender = RemoteRequestSender(testbed.client, testbed.overlay,
                                     client_cont, "10.0.0.10")
        sender.send_udp(src_port=40000, dst_port=5000,
                        payload=None, payload_len=32)
        testbed.sim.run(until=5 * MS)
        skb = socket.rcvbuf.dequeue()
        assert skb.is_high_priority

    def test_unmarked_flow_is_low_priority_in_prism(self):
        testbed, server_cont, client_cont = make_overlay_testbed(
            StackMode.PRISM_BATCH)
        testbed.mark_high_priority("10.0.0.99", 1234)  # some other flow
        socket = server_cont.udp_socket(5000, core_id=1)
        sender = RemoteRequestSender(testbed.client, testbed.overlay,
                                     client_cont, "10.0.0.10")
        sender.send_udp(src_port=40000, dst_port=5000,
                        payload=None, payload_len=32)
        testbed.sim.run(until=5 * MS)
        skb = socket.rcvbuf.dequeue()
        assert skb.classified
        assert not skb.is_high_priority


class TestHostNetworkDelivery:
    def test_plain_udp_to_host_socket(self):
        from repro.stack.egress import build_udp_packet

        testbed = build_testbed()
        socket = testbed.server.udp_socket(7000, core_id=1)
        packet = build_udp_packet(
            src_mac=testbed.client.mac, dst_mac=testbed.server.mac,
            src_ip=testbed.client.ip, dst_ip=testbed.server.ip,
            src_port=30001, dst_port=7000, payload="host", payload_len=16)
        testbed.client.transmit(packet)
        testbed.sim.run(until=5 * MS)
        assert len(socket.rcvbuf) == 1
        # Host path: no virtual devices involved.
        assert testbed.server_overlay.vxlan.rx_packets == 0
