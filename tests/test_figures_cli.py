"""Tests for the programmatic figure registry and the CLI."""

import pytest

from repro.__main__ import main
from repro.bench.figures import FIGURES, reproduce


class TestFigureRegistry:
    def test_registry_covers_key_figures(self):
        for name in ("fig3", "fig6", "fig8", "fig9", "fig10", "fig12",
                     "fig13"):
            assert name in FIGURES

    def test_unknown_figure_raises(self):
        with pytest.raises(KeyError):
            reproduce("fig99")

    def test_fig6_reproduces_exactly(self):
        detail, rows = reproduce("fig6")
        assert all(row.holds for row in rows)
        assert "eth" in detail and "veth" in detail


class TestCli:
    def test_no_args_lists_figures(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out

    def test_unknown_figure_exit_code(self, capsys):
        assert main(["fig99"]) == 2

    def test_single_figure_run(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "Fig. 6a" in out or "Vanilla" in out
