"""Tests for time units and the seeded RNG."""

import pytest

from repro.sim import MS, SEC, US, SeededRng, format_ns, ms, ns_to_us, sec, us


def test_unit_constants_ratio():
    assert US == 1_000
    assert MS == 1_000 * US
    assert SEC == 1_000 * MS


def test_conversions_round_trip():
    assert us(1.5) == 1_500
    assert ms(2) == 2_000_000
    assert sec(0.001) == 1_000_000
    assert ns_to_us(2_500) == 2.5


def test_format_ns_selects_unit():
    assert format_ns(500) == "500ns"
    assert format_ns(1_500) == "1.50us"
    assert format_ns(2_000_000) == "2.00ms"
    assert format_ns(3 * SEC) == "3.00s"


def test_rng_is_deterministic():
    a = SeededRng(42)
    b = SeededRng(42)
    assert [a.uniform_int(0, 100) for _ in range(20)] == [
        b.uniform_int(0, 100) for _ in range(20)]


def test_rng_different_seeds_differ():
    a = SeededRng(1)
    b = SeededRng(2)
    assert [a.uniform_int(0, 10**9) for _ in range(5)] != [
        b.uniform_int(0, 10**9) for _ in range(5)]


def test_fork_is_deterministic_and_independent():
    parent1 = SeededRng(7)
    parent2 = SeededRng(7)
    child1 = parent1.fork("flow-a")
    child2 = parent2.fork("flow-a")
    other = parent1.fork("flow-b")
    seq1 = [child1.random() for _ in range(5)]
    seq2 = [child2.random() for _ in range(5)]
    seq_other = [other.random() for _ in range(5)]
    assert seq1 == seq2
    assert seq1 != seq_other


def test_exponential_mean_zero_is_zero():
    rng = SeededRng(0)
    assert rng.exponential(0.0) == 0.0


def test_exponential_positive():
    rng = SeededRng(0)
    draws = [rng.exponential(100.0) for _ in range(100)]
    assert all(d >= 0 for d in draws)
    mean = sum(draws) / len(draws)
    assert 50 < mean < 200  # loose sanity bound


def test_zipf_index_bounds():
    rng = SeededRng(3)
    for _ in range(200):
        idx = rng.zipf_index(100)
        assert 0 <= idx < 100


def test_zipf_index_skews_to_low_indices():
    rng = SeededRng(3)
    draws = [rng.zipf_index(1000, skew=0.99) for _ in range(2000)]
    low = sum(1 for d in draws if d < 100)
    assert low > len(draws) // 2


def test_zipf_index_single_item():
    rng = SeededRng(0)
    assert rng.zipf_index(1) == 0


def test_zipf_index_invalid_n():
    rng = SeededRng(0)
    with pytest.raises(ValueError):
        rng.zipf_index(0)
