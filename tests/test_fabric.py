"""Fabric behavior: ECMP determinism, flowlets, cluster integration."""

import pytest

from repro.fabric import FabricNetwork, Topology, ecmp_index
from repro.fabric.ecmp import FlowletTable
from repro.overlay.wirefmt import WirePacket
from repro.shard.cluster import ClusterConfig, cluster_digest
from repro.shard.executor import run_cluster
from repro.shard.worker import partition_hosts
from repro.sim.units import MS

FAT8 = Topology.fat_tree(4, hosts=8)


def small_config(seed=0, **overrides) -> ClusterConfig:
    base = dict(hosts=8, users=600, duration_ns=4 * MS, warmup_ns=1 * MS,
                seed=seed, topology=FAT8)
    base.update(overrides)
    return ClusterConfig(**base)


def wp(seq, *, src=0, dst=7, departure_ns=0, cls="hi"):
    return WirePacket(src_host=src, dst_host=dst, cls=cls, kind="req",
                      seq=seq, departure_ns=departure_ns,
                      arrival_ns=departure_ns + 50_000, payload_len=64,
                      sent_at=departure_ns)


class TestEcmpHash:
    def test_deterministic_and_in_range(self):
        flow = (0, 7, "hi", "req")
        first = ecmp_index(7, flow, 0, 4)
        assert first == ecmp_index(7, flow, 0, 4)
        assert 0 <= first < 4
        assert ecmp_index(7, flow, 0, 1) == 0

    def test_salt_generation_and_flow_vary_the_index(self):
        flows = [(s, d, "hi", "req") for s in range(8) for d in range(8)]
        spread = {ecmp_index(0, f, 0, 4) for f in flows}
        assert spread == {0, 1, 2, 3}
        flow = flows[0]
        by_gen = {ecmp_index(0, flow, g, 64) for g in range(32)}
        assert len(by_gen) > 1
        by_salt = {ecmp_index(s, flow, 0, 64) for s in range(32)}
        assert len(by_salt) > 1


class TestFlowletTable:
    def test_within_gap_keeps_the_path(self):
        table = FlowletTable(gap_ns=100_000, salt=1)
        flow = (0, 7, "hi", "req")
        first = table.assign(flow, 0, 4)
        for t in range(10_000, 100_000, 10_000):
            assert table.assign(flow, t, 4) == first
        assert table.rehashes == 0

    def test_idle_gap_rehashes(self):
        table = FlowletTable(gap_ns=100_000, salt=1)
        flow = (0, 7, "hi", "req")
        seen = {table.assign(flow, 0, 8)}
        t = 0
        for _ in range(40):
            t += 200_000  # every send exceeds the idle gap
            seen.add(table.assign(flow, t, 8))
        assert table.rehashes == 40
        assert table.path_changes > 0
        assert len(seen) > 1


class TestFabricNetwork:
    def test_transit_is_deterministic(self):
        packets = [wp(i, departure_ns=i * 1_000) for i in range(50)]
        outs = []
        for _ in range(2):
            net = FabricNetwork(FAT8, seed=3)
            outs.append((net.transit(list(packets)), net.stats()))
        assert outs[0] == outs[1]

    def test_arrivals_respect_the_lookahead(self):
        net = FabricNetwork(FAT8, seed=0)
        for out in net.transit([wp(i, departure_ns=i * 500)
                                for i in range(20)]):
            assert out.arrival_ns >= out.departure_ns + net.lookahead_ns

    def test_bursty_flow_spreads_over_paths(self):
        # One flow sending bursts separated by more than the flowlet
        # gap: ECMP alone would pin it to one path, flowlet switching
        # must spread it.
        net = FabricNetwork(FAT8, seed=1)
        packets = []
        t = 0
        for burst in range(12):
            for i in range(3):
                packets.append(wp(0, departure_ns=t + i * 1_000))
            t += 400_000  # idle gap >> flowlet_gap_ns (100 us)
        net.transit(packets)
        stats = net.stats()
        assert stats["flowlet_rehashes"] == 11
        (paths,) = stats["flow_paths"].values()
        assert len(paths) > 1
        assert stats["flowlet_path_changes"] > 0


class TestPartitioning:
    def test_legacy_split_is_unchanged(self):
        assert partition_hosts(16, 4) == [[0, 1, 2, 3], [4, 5, 6, 7],
                                          [8, 9, 10, 11], [12, 13, 14, 15]]
        assert partition_hosts(2, 8) == [[0], [1]]

    def test_rack_aligned_split(self):
        spec16 = Topology.fat_tree(4)
        # k=4 racks hold 2 hosts: every block boundary lands on an even
        # host id, and the union is every host exactly once.
        for shards in (2, 3, 4, 5, 8):
            blocks = partition_hosts(16, shards, topology=spec16)
            assert [h for b in blocks for h in b] == list(range(16))
            assert all(b for b in blocks)
            assert all(b[0] % 2 == 0 for b in blocks)


@pytest.mark.slow
class TestFabricCluster:
    def test_digest_deterministic_and_partition_independent(self):
        config = small_config(seed=3)
        runs = {
            "s1": run_cluster(config, shards=1),
            "s1-again": run_cluster(config, shards=1),
            "s3-inproc": run_cluster(config, shards=3, processes=False),
            "s2-subproc": run_cluster(config, shards=2, processes=True),
        }
        digests = {name: cluster_digest(r) for name, r in runs.items()}
        assert len(set(digests.values())) == 1, digests
        for result in runs.values():
            assert result.conservation["exact"]

    def test_seed_changes_the_digest(self):
        one = run_cluster(small_config(seed=0), shards=1)
        two = run_cluster(small_config(seed=1), shards=1)
        assert cluster_digest(one) != cluster_digest(two)

    def test_fabric_stats_show_ecmp_spread(self):
        result = run_cluster(small_config(), shards=1)
        stats = result.fabric
        assert stats["paths_used_max"] > 1
        assert stats["flows_multipath"] > 0
        assert stats["links_used"] == 48
        assert stats["packets"] == result.conservation["cross_routed"]

    def test_lookahead_is_min_path_latency(self):
        assert small_config().lookahead_ns == 50_000  # 2 hops same-ToR
        legacy = ClusterConfig(hosts=4, fabric_latency_ns=70_000)
        assert legacy.lookahead_ns == 70_000

    def test_topology_in_digest_payload_and_round_trip(self):
        config = small_config()
        assert "topology" in config.to_dict()
        assert ClusterConfig.from_dict(config.to_dict()) == config
        legacy = ClusterConfig(hosts=4)
        assert "topology" not in legacy.to_dict()
        assert ClusterConfig.from_dict(legacy.to_dict()) == legacy

    def test_host_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="describes 8 hosts"):
            ClusterConfig(hosts=4, topology=FAT8)

    def test_two_host_spec_rejected(self):
        with pytest.raises(ValueError, match="Scenario.on"):
            ClusterConfig(hosts=2, topology=Topology.two_host())
