"""SimProfiler unit tests: edge attribution, sampling, exports.

Driven synthetically through a minimal kernel stand-in (the profiler
only touches ``kernel.sim`` and ``kernel.tracer``), so span timings are
exact and every assertion is arithmetic.  Integration against the real
kernel's spans lives in test_telemetry_neutrality.py.
"""

from __future__ import annotations

import json

from repro.sim.engine import Simulator
from repro.telemetry import SimProfiler
from repro.trace.tracer import TracePoint, Tracer


class FakeKernel:
    def __init__(self):
        self.sim = Simulator()
        self.tracer = Tracer()


def make():
    kernel = FakeKernel()
    return kernel, kernel.sim, kernel.tracer


def advance(sim, ns):
    """Advance simulated time by *ns* (bounded run: the profiler's
    periodic sampler keeps the event queue non-empty forever)."""
    sim.run(until=sim.now + ns)
    assert sim.now >= ns


class TestEdgeAttribution:
    def test_leaf_gets_elapsed_time(self):
        kernel, sim, tracer = make()
        prof = SimProfiler(kernel, sample_interval_ns=0)
        tracer.emit(TracePoint.SPAN_BEGIN, track="cpu0", name="outer")
        advance(sim, 100)
        tracer.emit(TracePoint.SPAN_BEGIN, track="cpu0", name="inner")
        advance(sim, 40)
        tracer.emit(TracePoint.SPAN_END, track="cpu0", name="inner")
        advance(sim, 10)
        tracer.emit(TracePoint.SPAN_END, track="cpu0", name="outer")
        prof.finalize()
        assert prof.self_ns == {
            ("cpu0", ("outer",)): 110,  # 100 before inner + 10 after
            ("cpu0", ("outer", "inner")): 40,
        }
        assert prof.total_ns() == 150
        assert prof.total_ns("cpu0") == 150
        assert prof.total_ns("cpu1") == 0

    def test_tracks_are_independent(self):
        kernel, sim, tracer = make()
        prof = SimProfiler(kernel, sample_interval_ns=0)
        tracer.emit(TracePoint.SPAN_BEGIN, track="cpu0", name="a")
        tracer.emit(TracePoint.SPAN_BEGIN, track="cpu1", name="b")
        advance(sim, 50)
        tracer.emit(TracePoint.SPAN_END, track="cpu0", name="a")
        tracer.emit(TracePoint.SPAN_END, track="cpu1", name="b")
        prof.finalize()
        assert prof.self_ns[("cpu0", ("a",))] == 50
        assert prof.self_ns[("cpu1", ("b",))] == 50
        assert prof.tracks() == ["cpu0", "cpu1"]

    def test_priority_class_folds_into_frame_name(self):
        kernel, sim, tracer = make()
        prof = SimProfiler(kernel, sample_interval_ns=0)
        tracer.emit(TracePoint.SPAN_BEGIN, track="cpu0", name="skb:eth",
                    hp=True)
        advance(sim, 30)
        tracer.emit(TracePoint.SPAN_END, track="cpu0", name="skb:eth")
        tracer.emit(TracePoint.SPAN_BEGIN, track="cpu0", name="skb:eth",
                    hp=False)
        advance(sim, 70)
        tracer.emit(TracePoint.SPAN_END, track="cpu0", name="skb:eth")
        prof.finalize()
        assert prof.self_ns[("cpu0", ("skb:eth[hp]",))] == 30
        assert prof.self_ns[("cpu0", ("skb:eth[lp]",))] == 70

    def test_finalize_attributes_trailing_open_span(self):
        kernel, sim, tracer = make()
        prof = SimProfiler(kernel, sample_interval_ns=0)
        tracer.emit(TracePoint.SPAN_BEGIN, track="cpu0", name="open")
        advance(sim, 25)
        prof.finalize()  # run ended mid-span
        assert prof.self_ns[("cpu0", ("open",))] == 25

    def test_finalize_is_idempotent_and_detaches(self):
        kernel, sim, tracer = make()
        prof = SimProfiler(kernel, sample_interval_ns=0)
        prof.finalize()
        prof.finalize()
        assert not tracer.active  # subscriptions released
        tracer.emit(TracePoint.SPAN_BEGIN, track="cpu0", name="late")
        advance(sim, 10)
        assert prof.self_ns == {}  # detached: no further attribution

    def test_stage_totals_key_by_leaf_frame(self):
        kernel, sim, tracer = make()
        prof = SimProfiler(kernel, sample_interval_ns=0)
        tracer.emit(TracePoint.SPAN_BEGIN, track="cpu0", name="outer")
        advance(sim, 10)
        tracer.emit(TracePoint.SPAN_BEGIN, track="cpu0", name="leaf")
        advance(sim, 5)
        tracer.emit(TracePoint.SPAN_END, track="cpu0", name="leaf")
        tracer.emit(TracePoint.SPAN_END, track="cpu0", name="outer")
        prof.finalize()
        assert prof.stage_totals() == {"outer": 10, "leaf": 5}


class TestPeriodicSampling:
    def test_samples_record_active_stack(self):
        kernel, sim, tracer = make()
        prof = SimProfiler(kernel, sample_interval_ns=10)
        prof.start()
        tracer.emit(TracePoint.SPAN_BEGIN, track="cpu0", name="busy")
        advance(sim, 100)
        tracer.emit(TracePoint.SPAN_END, track="cpu0", name="busy")
        prof.finalize()
        assert prof.samples_taken == 10
        assert prof.sample_counts == {("cpu0", ("busy",)): 10}

    def test_idle_tracks_are_not_sampled(self):
        kernel, sim, tracer = make()
        prof = SimProfiler(kernel, sample_interval_ns=10)
        prof.start()
        advance(sim, 100)  # no open spans anywhere
        prof.finalize()
        assert prof.samples_taken == 0

    def test_max_samples_bound_counts_overflow(self):
        kernel, sim, tracer = make()
        prof = SimProfiler(kernel, sample_interval_ns=10, max_samples=3)
        prof.start()
        tracer.emit(TracePoint.SPAN_BEGIN, track="cpu0", name="busy")
        advance(sim, 100)
        tracer.emit(TracePoint.SPAN_END, track="cpu0", name="busy")
        prof.finalize()
        assert prof.samples_taken == 3
        assert prof.samples_dropped == 7

    def test_zero_interval_disables_sampling(self):
        kernel, sim, tracer = make()
        prof = SimProfiler(kernel, sample_interval_ns=0)
        prof.start()
        tracer.emit(TracePoint.SPAN_BEGIN, track="cpu0", name="busy")
        advance(sim, 100)
        tracer.emit(TracePoint.SPAN_END, track="cpu0", name="busy")
        prof.finalize()
        assert prof.samples_taken == 0
        assert prof.self_ns[("cpu0", ("busy",))] == 100  # edges still exact


class TestExports:
    def _profiled(self, sample_interval_ns=0):
        kernel, sim, tracer = make()
        prof = SimProfiler(kernel, sample_interval_ns=sample_interval_ns)
        prof.start()
        tracer.emit(TracePoint.SPAN_BEGIN, track="cpu0", name="outer")
        advance(sim, 60)
        tracer.emit(TracePoint.SPAN_BEGIN, track="cpu0", name="inner")
        advance(sim, 40)
        tracer.emit(TracePoint.SPAN_END, track="cpu0", name="inner")
        tracer.emit(TracePoint.SPAN_END, track="cpu0", name="outer")
        prof.finalize()
        return prof

    def test_folded_lines(self):
        prof = self._profiled()
        assert prof.folded() == [
            "cpu0;outer 60",
            "cpu0;outer;inner 40",
        ]

    def test_write_folded(self, tmp_path):
        prof = self._profiled()
        out = prof.write_folded(tmp_path / "prof.folded")
        assert out.read_text() == "cpu0;outer 60\ncpu0;outer;inner 40\n"

    def test_speedscope_from_samples(self, tmp_path):
        prof = self._profiled(sample_interval_ns=10)
        doc = prof.speedscope("test")
        assert doc["$schema"] == (
            "https://www.speedscope.app/file-format-schema.json")
        (profile,) = doc["profiles"]
        assert profile["type"] == "sampled"
        assert profile["name"] == "cpu0"
        assert len(profile["samples"]) == prof.samples_taken == 10
        assert profile["weights"] == [10] * 10
        frames = [f["name"] for f in doc["shared"]["frames"]]
        # Every referenced frame index resolves.
        for sample in profile["samples"]:
            for idx in sample:
                assert 0 <= idx < len(frames)
        out = prof.write_speedscope(tmp_path / "prof.speedscope.json")
        assert json.loads(out.read_text())["name"] == "repro"

    def test_speedscope_fallback_from_folded_stacks(self):
        prof = self._profiled(sample_interval_ns=0)  # no periodic samples
        doc = prof.speedscope()
        (profile,) = doc["profiles"]
        assert profile["weights"] == [60, 40]
        assert profile["endValue"] == 100
