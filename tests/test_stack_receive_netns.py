"""Tests for protocol_rcv edge cases and network namespaces."""

import dataclasses

import pytest

from repro.kernel.core import Kernel
from repro.netdev.device import NetDevice
from repro.packet.addr import Ipv4Address, MacAddress
from repro.packet.headers import IPPROTO_TCP, EthernetHeader, IPv4Header
from repro.packet.packet import Packet
from repro.packet.skb import SKBuff
from repro.sim import Simulator
from repro.stack.egress import build_udp_packet
from repro.stack.netns import NetNamespace
from repro.stack.receive import protocol_rcv
from repro.stack.sockets import UdpSocket
from repro.stack.tcp import TcpEndpoint

MAC = MacAddress(1)
LOCAL_IP = Ipv4Address("10.0.0.10")
OTHER_IP = Ipv4Address("10.0.0.99")


def make_env(local_ip=LOCAL_IP):
    sim = Simulator()
    kernel = Kernel(sim, n_cpus=1)
    netns = NetNamespace("ns")
    device = NetDevice("veth0", mac=MAC, ip=local_ip)
    netns.add_device(device)
    return sim, kernel, netns


def udp_skb(dst=LOCAL_IP, dport=5000, ttl=64):
    packet = build_udp_packet(
        src_mac=MAC, dst_mac=MacAddress(2),
        src_ip=Ipv4Address("10.0.0.100"), dst_ip=dst,
        src_port=30001, dst_port=dport, payload=None, payload_len=16)
    if ttl != 64:
        headers = list(packet.headers)
        headers[1] = dataclasses.replace(headers[1], ttl=ttl)
        packet.headers = tuple(headers)
    return SKBuff(packet)


class TestProtocolRcv:
    def test_delivers_to_bound_socket(self):
        _sim, kernel, netns = make_env()
        socket = UdpSocket(kernel, netns, None, 5000)
        netns.sockets.bind_udp(socket)
        assert protocol_rcv(kernel, netns, udp_skb(), kernel.cpu(0))
        assert socket.delivered == 1

    def test_non_ip_dropped(self):
        _sim, kernel, netns = make_env()
        skb = SKBuff(Packet(headers=(
            EthernetHeader(MAC, MacAddress(2)),), payload_len=10))
        assert not protocol_rcv(kernel, netns, skb, kernel.cpu(0))
        assert any("non-ip" in name for name in kernel.drops)

    def test_ttl_expired_dropped(self):
        _sim, kernel, netns = make_env()
        socket = UdpSocket(kernel, netns, None, 5000)
        netns.sockets.bind_udp(socket)
        assert not protocol_rcv(kernel, netns, udp_skb(ttl=0), kernel.cpu(0))
        assert any("ttl" in name for name in kernel.drops)
        assert socket.delivered == 0

    def test_not_local_ip_dropped(self):
        _sim, kernel, netns = make_env()
        socket = UdpSocket(kernel, netns, None, 5000)
        netns.sockets.bind_udp(socket)
        assert not protocol_rcv(kernel, netns, udp_skb(dst=OTHER_IP),
                                kernel.cpu(0))
        assert any("not-local" in name for name in kernel.drops)

    def test_namespace_without_ips_accepts_everything(self):
        # A namespace with no addressed devices (e.g. a test harness
        # root) does not enforce the local-IP check.
        sim = Simulator()
        kernel = Kernel(sim, n_cpus=1)
        netns = NetNamespace("bare")
        socket = UdpSocket(kernel, netns, None, 5000)
        netns.sockets.bind_udp(socket)
        assert protocol_rcv(kernel, netns, udp_skb(dst=OTHER_IP),
                            kernel.cpu(0))

    def test_unknown_transport_dropped(self):
        _sim, kernel, netns = make_env()
        skb = SKBuff(Packet(headers=(
            EthernetHeader(MAC, MacAddress(2)),
            IPv4Header(Ipv4Address("10.0.0.100"), LOCAL_IP, protocol=47)),
            payload_len=10))
        assert not protocol_rcv(kernel, netns, skb, kernel.cpu(0))
        assert any("proto-unknown" in name for name in kernel.drops)

    def test_tcp_demux_to_endpoint(self):
        from repro.stack.egress import build_tcp_segments
        from repro.stack.tcp import TcpMessage
        _sim, kernel, netns = make_env()
        endpoint = TcpEndpoint(kernel, netns, None, 80)
        netns.sockets.bind_tcp(endpoint)
        message = TcpMessage(payload="m", length=10)
        (segment,) = build_tcp_segments(
            src_mac=MAC, dst_mac=MacAddress(2),
            src_ip=Ipv4Address("10.0.0.100"), dst_ip=LOCAL_IP,
            src_port=30001, dst_port=80, message=message, mss=1_448)
        assert protocol_rcv(kernel, netns, SKBuff(segment), kernel.cpu(0))
        assert endpoint.messages_delivered == 1

    def test_tcp_unmatched_dropped(self):
        from repro.stack.egress import build_tcp_segments
        from repro.stack.tcp import TcpMessage
        _sim, kernel, netns = make_env()
        message = TcpMessage(payload="m", length=10)
        (segment,) = build_tcp_segments(
            src_mac=MAC, dst_mac=MacAddress(2),
            src_ip=Ipv4Address("10.0.0.100"), dst_ip=LOCAL_IP,
            src_port=30001, dst_port=81, message=message, mss=1_448)
        assert not protocol_rcv(kernel, netns, SKBuff(segment), kernel.cpu(0))
        assert any("tcp-unmatched" in name for name in kernel.drops)


class TestNetNamespace:
    def test_add_device_registers_ip(self):
        _sim, _kernel, netns = make_env()
        assert netns.is_local_ip(LOCAL_IP)
        assert not netns.is_local_ip(OTHER_IP)

    def test_device_by_name(self):
        _sim, _kernel, netns = make_env()
        assert netns.device_by_name("veth0") is not None
        assert netns.device_by_name("eth9") is None

    def test_device_netns_backref(self):
        _sim, _kernel, netns = make_env()
        assert netns.device_by_name("veth0").netns is netns

    def test_isolated_port_spaces(self):
        sim = Simulator()
        kernel = Kernel(sim, n_cpus=1)
        ns_a = NetNamespace("a")
        ns_b = NetNamespace("b")
        ns_a.sockets.bind_udp(UdpSocket(kernel, ns_a, None, 5000))
        # Same port binds fine in another namespace.
        ns_b.sockets.bind_udp(UdpSocket(kernel, ns_b, None, 5000))
