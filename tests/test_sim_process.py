"""Unit tests for generator-based simulation processes."""

import pytest

from repro.sim import Process, Simulator


def test_process_yield_int_sleeps():
    sim = Simulator()
    log = []

    def worker():
        log.append(sim.now)
        yield 100
        log.append(sim.now)

    sim.process(worker())
    sim.run()
    assert log == [0, 100]


def test_process_yield_float_is_rounded():
    sim = Simulator()
    log = []

    def worker():
        yield 99.6
        log.append(sim.now)

    sim.process(worker())
    sim.run()
    assert log == [100]


def test_process_yield_none_is_cooperative_yield():
    sim = Simulator()
    log = []

    def worker(name):
        for _ in range(2):
            log.append((sim.now, name))
            yield None

    sim.process(worker("a"))
    sim.process(worker("b"))
    sim.run()
    # Interleaved at the same timestamp, FIFO order.
    assert log == [(0, "a"), (0, "b"), (0, "a"), (0, "b")]


def test_process_waits_on_event_and_receives_value():
    sim = Simulator()
    event = sim.event()
    got = []

    def waiter():
        value = yield event
        got.append((sim.now, value))

    sim.process(waiter())
    sim.schedule(500, lambda: event.succeed("payload"))
    sim.run()
    assert got == [(500, "payload")]


def test_process_event_failure_raises_inside_generator():
    sim = Simulator()
    event = sim.event()
    caught = []

    def waiter():
        try:
            yield event
        except ValueError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    sim.schedule(10, lambda: event.fail(ValueError("bad")))
    sim.run()
    assert caught == ["bad"]


def test_process_return_value_becomes_event_value():
    sim = Simulator()

    def child():
        yield 50
        return 42

    def parent(results):
        value = yield sim.process(child())
        results.append(value)

    results = []
    sim.process(parent(results))
    sim.run()
    assert results == [42]


def test_process_alive_transitions():
    sim = Simulator()

    def worker():
        yield 100

    proc = sim.process(worker())
    assert proc.alive
    sim.run()
    assert not proc.alive
    assert proc.triggered


def test_process_kill_stops_execution():
    sim = Simulator()
    log = []

    def worker():
        yield 100
        log.append("should not happen")

    proc = sim.process(worker())
    sim.run(until=50)
    proc.kill()
    sim.run()
    assert log == []
    assert not proc.alive


def test_process_kill_is_idempotent():
    sim = Simulator()

    def worker():
        yield 100

    proc = sim.process(worker())
    proc.kill()
    proc.kill()
    sim.run()


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError):
        Process(sim, lambda: None)  # type: ignore[arg-type]


def test_process_bad_yield_type_raises():
    sim = Simulator()

    def worker():
        yield "nonsense"

    sim.process(worker())
    with pytest.raises(TypeError):
        sim.run()


def test_two_processes_communicate_through_event():
    sim = Simulator()
    ready = sim.event()
    log = []

    def producer():
        yield 30
        ready.succeed("item")

    def consumer():
        item = yield ready
        log.append((sim.now, item))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert log == [(30, "item")]


def test_process_chain_sequencing():
    sim = Simulator()
    log = []

    def stage(name, delay):
        yield delay
        log.append((sim.now, name))

    def pipeline():
        yield sim.process(stage("first", 10))
        yield sim.process(stage("second", 20))

    sim.process(pipeline())
    sim.run()
    assert log == [(10, "first"), (30, "second")]
