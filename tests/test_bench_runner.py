"""Tests for the parallel cached experiment runner (`repro.bench.runner`).

Pins the determinism contract the runner's two optimizations rest on:
the same seed + config must produce a byte-identical
:class:`ExperimentResult` whether executed serially, through a worker
pool, or served from the on-disk cache.
"""

import dataclasses
import pickle

import pytest

from repro.bench.experiment import ExperimentConfig, run_experiment
from repro.bench.runner import (
    ResultCache,
    code_version,
    config_key,
    result_digest,
    run_batch,
    run_experiments,
    run_repeated,
)
from repro.prism.mode import StackMode
from repro.sim.units import MS

FAST = dict(duration_ns=30 * MS, warmup_ns=10 * MS)


def _configs():
    return [
        ExperimentConfig(mode=StackMode.VANILLA, fg_rate_pps=2_000, **FAST),
        ExperimentConfig(mode=StackMode.PRISM_SYNC, fg_rate_pps=2_000,
                         bg_rate_pps=50_000, **FAST),
    ]


class TestCacheKey:
    def test_key_is_stable_across_calls(self):
        config = ExperimentConfig(fg_rate_pps=2_000, **FAST)
        assert config_key(config) == config_key(config)

    def test_key_distinguishes_configs(self):
        a = ExperimentConfig(fg_rate_pps=2_000, **FAST)
        b = ExperimentConfig(fg_rate_pps=2_000, seed=7, **FAST)
        c = ExperimentConfig(fg_rate_pps=2_000, mode=StackMode.PRISM_SYNC,
                             **FAST)
        assert len({config_key(a), config_key(b), config_key(c)}) == 3

    def test_key_includes_code_version(self):
        assert code_version() in ("", code_version())  # memoized and stable
        assert len(code_version()) == 16

    def test_digest_equal_iff_results_equal(self):
        config = ExperimentConfig(fg_rate_pps=2_000, **FAST)
        a = run_experiment(config)
        b = run_experiment(config)
        assert result_digest(a) == result_digest(b)
        other = run_experiment(dataclasses.replace(config, seed=3))
        assert result_digest(a) != result_digest(other)


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        config = ExperimentConfig(fg_rate_pps=2_000, **FAST)
        result = run_experiment(config)
        cache = ResultCache(tmp_path)
        assert cache.get(config) is None
        cache.put(config, result)
        cached = cache.get(config)
        assert cached is not None
        assert result_digest(cached) == result_digest(result)
        assert cache.hits == 1 and cache.misses == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        config = ExperimentConfig(fg_rate_pps=2_000, **FAST)
        cache = ResultCache(tmp_path)
        cache.put(config, run_experiment(config))
        path = cache._path(config_key(config))
        path.write_bytes(b"not a pickle")
        assert cache.get(config) is None


class TestDeterminism:
    def test_serial_parallel_cached_identical(self, tmp_path):
        """Same configs ⇒ byte-identical results through every path."""
        configs = _configs()
        serial = run_experiments(configs, jobs=1, cache=False)
        parallel = run_experiments(configs, jobs=2, cache=False)
        warm = run_batch(configs, jobs=2, cache=True, cache_dir=tmp_path)
        cached = run_batch(configs, jobs=1, cache=True, cache_dir=tmp_path)

        serial_digests = [result_digest(r) for r in serial]
        assert [result_digest(r) for r in parallel] == serial_digests
        assert [result_digest(r) for r in warm.results] == serial_digests
        assert [result_digest(r) for r in cached.results] == serial_digests
        # Second invocation is served entirely from the cache.
        assert warm.cache_misses == len(configs)
        assert cached.cache_hits == len(configs)
        assert cached.cache_misses == 0

    def test_results_keep_config_order(self, tmp_path):
        configs = _configs()
        results = run_experiments(configs, jobs=2, cache=True,
                                  cache_dir=tmp_path)
        for config, result in zip(configs, results):
            assert result.config == config

    def test_mixed_hit_miss_batch(self, tmp_path):
        """A batch with some cached and some fresh configs stays ordered."""
        configs = _configs()
        run_experiments(configs[:1], cache=True, cache_dir=tmp_path)
        report = run_batch(configs, cache=True, cache_dir=tmp_path)
        assert report.cache_hits == 1
        assert report.cache_misses == 1
        assert [r.config for r in report.results] == configs

    def test_results_pickle_roundtrip(self):
        """Worker-pool transport must not perturb the result."""
        result = run_experiment(ExperimentConfig(fg_rate_pps=2_000, **FAST))
        clone = pickle.loads(pickle.dumps(result))
        assert result_digest(clone) == result_digest(result)


class TestRepeatedRuns:
    def test_stability_across_seeds(self, tmp_path):
        config = ExperimentConfig(fg_rate_pps=2_000, **FAST)
        repeated = run_repeated(config, seeds=[1, 2, 3], cache=True,
                                cache_dir=tmp_path)
        assert repeated.seeds == [1, 2, 3]
        assert len(repeated.results) == 3
        stat = repeated.stability["fg_avg_ns"]
        assert stat.n == 3
        assert stat.mean > 0
        assert stat.rel_stdev < 0.5  # same scenario, different seeds
        # Each per-seed run really used its seed.
        assert [r.config.seed for r in repeated.results] == [1, 2, 3]

    def test_same_seed_zero_spread(self, tmp_path):
        config = ExperimentConfig(fg_rate_pps=2_000, **FAST)
        repeated = run_repeated(config, seeds=[5, 5], cache=False)
        stat = repeated.stability["fg_avg_ns"]
        assert stat.stdev == 0.0

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_repeated(ExperimentConfig(**FAST), seeds=[])


class TestCounterSelection:
    """Satellite: fg counters are selected by network type, not truthiness."""

    def test_host_run_uses_host_counters(self, monkeypatch):
        import repro.bench.experiment as exp_mod
        captured = {}
        real_setup = exp_mod._host_network_setup

        def spy(testbed, config, recorder):
            fg_meter, bg_meter, counters = real_setup(
                testbed, config, recorder)
            captured["counters"] = counters
            return fg_meter, bg_meter, counters

        monkeypatch.setattr(exp_mod, "_host_network_setup", spy)
        result = run_experiment(ExperimentConfig(
            network="host", fg_rate_pps=2_000, **FAST))
        assert result.fg_sent == captured["counters"]["fg_sent"]
        assert result.fg_replies == captured["counters"]["fg_replies"]
        assert result.fg_sent > 0

    def test_overlay_run_uses_client_counters(self, monkeypatch):
        import repro.bench.experiment as exp_mod
        captured = {}
        real_setup = exp_mod._overlay_setup

        def spy(testbed, config, recorder):
            fg_meter, bg_meter, counters, fg_client = real_setup(
                testbed, config, recorder)
            captured["client"] = fg_client
            return fg_meter, bg_meter, counters, fg_client

        monkeypatch.setattr(exp_mod, "_overlay_setup", spy)
        result = run_experiment(ExperimentConfig(fg_rate_pps=2_000, **FAST))
        assert result.fg_sent == captured["client"].sent
        assert result.fg_replies == captured["client"].replies
        assert result.fg_sent > 0
