"""Tests for the per-packet stage timeline (Fig. 5 machinery)."""

from repro.apps.remote import RemoteRequestSender
from repro.bench.testbed import build_testbed
from repro.prism.mode import StackMode
from repro.sim.units import MS
from repro.trace.timeline import StageTimeline
from repro.trace.tracer import Tracer


def run_with_timeline(mode, n_low=32, n_high=4):
    tracer = Tracer()
    testbed = build_testbed(mode=mode, tracer=tracer)
    high_server = testbed.add_server_container("hi", "10.0.0.10")
    low_server = testbed.add_server_container("lo", "10.0.0.11")
    high_client = testbed.add_client_container("hic", "10.0.0.100")
    low_client = testbed.add_client_container("loc", "10.0.0.101")
    high_server.udp_socket(5000, core_id=1)
    low_server.udp_socket(6000, core_id=1)
    testbed.mark_high_priority("10.0.0.10", 5000)
    timeline = StageTimeline(tracer, lambda: testbed.sim.now)
    low_sender = RemoteRequestSender(testbed.client, testbed.overlay,
                                     low_client, "10.0.0.11")
    high_sender = RemoteRequestSender(testbed.client, testbed.overlay,
                                      high_client, "10.0.0.10")
    for _ in range(n_low):
        low_sender.send_udp(src_port=40001, dst_port=6000,
                            payload=None, payload_len=32)
    for _ in range(n_high):
        high_sender.send_udp(src_port=40000, dst_port=5000,
                             payload=None, payload_len=32)
    testbed.sim.run(until=20 * MS)
    return timeline


class TestStageTimeline:
    def test_reconstructs_every_packet(self):
        timeline = run_with_timeline(StackMode.VANILLA)
        completed = timeline.completed()
        assert len(completed) == 36
        assert all(entry.complete for entry in completed)

    def test_stage_order_within_each_packet(self):
        timeline = run_with_timeline(StackMode.VANILLA)
        for entry in timeline.completed():
            assert entry.ring_at <= entry.stage_done_at["eth"]
            assert entry.stage_done_at["eth"] <= entry.socket_at

    def test_vanilla_records_all_three_stages(self):
        timeline = run_with_timeline(StackMode.VANILLA)
        entry = timeline.completed()[0]
        assert set(entry.stage_done_at) >= {"eth", "br"}

    def test_sync_mode_high_packets_finish_inside_eth_context(self):
        timeline = run_with_timeline(StackMode.PRISM_SYNC)
        highs = [e for e in timeline.completed() if e.high_priority]
        assert highs
        for entry in highs:
            # Inline stages still emit stage_done, but delivery happens
            # within the same softirq: socket time == eth stage time.
            assert entry.socket_at <= entry.stage_done_at["eth"]

    def test_kernel_times_positive(self):
        timeline = run_with_timeline(StackMode.PRISM_BATCH)
        times = timeline.kernel_times_ns()
        assert all(t > 0 for t in times)

    def test_high_priority_flag_tracked(self):
        timeline = run_with_timeline(StackMode.PRISM_BATCH)
        flags = {entry.high_priority for entry in timeline.completed()}
        assert flags == {True, False}

    def test_render_ascii_gantt(self):
        timeline = run_with_timeline(StackMode.PRISM_BATCH)
        art = timeline.render_ascii(limit=40)
        assert "#" in art and "=" in art
        assert "hi" in art and "lo" in art

    def test_render_empty(self):
        tracer = Tracer()
        timeline = StageTimeline(tracer, lambda: 0)
        assert "no completed" in timeline.render_ascii()

    def test_stop_detaches(self):
        timeline = run_with_timeline(StackMode.VANILLA, n_low=1, n_high=1)
        count = len(timeline.packets)
        timeline.stop()
        # New traffic after stop must not be recorded.
        assert len(timeline.packets) == count

    def test_max_packets_cap(self):
        tracer = Tracer()
        testbed = build_testbed(tracer=tracer)
        server = testbed.add_server_container("srv", "10.0.0.10")
        client = testbed.add_client_container("cli", "10.0.0.100")
        server.udp_socket(5000, core_id=1)
        timeline = StageTimeline(tracer, lambda: testbed.sim.now,
                                 max_packets=5)
        sender = RemoteRequestSender(testbed.client, testbed.overlay,
                                     client, "10.0.0.10")
        for _ in range(20):
            sender.send_udp(src_port=40000, dst_port=5000,
                            payload=None, payload_len=32)
        testbed.sim.run(until=10 * MS)
        assert len(timeline.packets) == 5
