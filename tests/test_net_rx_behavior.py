"""Behavioural tests for the two net_rx_action implementations:
budget handling, completion, priority preemption, and mode switching."""

import pytest

from repro.apps.remote import RemoteRequestSender
from repro.bench.testbed import build_testbed
from repro.kernel.config import KernelConfig
from repro.prism.mode import StackMode
from repro.sim.units import MS
from repro.trace.pollorder import PollOrderTracer
from repro.trace.tracer import TracePoint, Tracer


def setup(mode=StackMode.VANILLA, config=None, tracer=None):
    testbed = build_testbed(mode=mode, config=config, tracer=tracer)
    server = testbed.add_server_container("srv", "10.0.0.10")
    client = testbed.add_client_container("cli", "10.0.0.100")
    socket = server.udp_socket(5000, core_id=1)
    sender = RemoteRequestSender(testbed.client, testbed.overlay,
                                 client, "10.0.0.10")
    return testbed, socket, sender


def send_burst(sender, n, dport=5000):
    for _ in range(n):
        sender.send_udp(src_port=40000, dst_port=dport,
                        payload=None, payload_len=32)


class TestBudget:
    @pytest.mark.parametrize("mode", [StackMode.VANILLA,
                                      StackMode.PRISM_BATCH])
    def test_budget_splits_softirq_invocations(self, mode):
        # Budget 100 with a 300-packet burst: several softirq rounds.
        tracer = Tracer()
        config = KernelConfig(napi_budget=100)
        testbed, socket, sender = setup(mode, config, tracer)
        invocations = []
        tracer.attach(TracePoint.NET_RX_ACTION,
                      lambda **kw: invocations.append(kw))
        send_burst(sender, 300)
        testbed.sim.run(until=20 * MS)
        assert socket.delivered == 300
        assert len(invocations) >= 3

    @pytest.mark.parametrize("mode", list(StackMode))
    def test_everything_delivered_with_tiny_budget(self, mode):
        config = KernelConfig(napi_budget=16, napi_weight=8)
        testbed, socket, sender = setup(mode, config)
        if mode.is_prism:
            testbed.mark_high_priority("10.0.0.10", 5000)
        send_burst(sender, 200)
        testbed.sim.run(until=50 * MS)
        assert socket.delivered == 200


class TestCompletionAndRequiescence:
    def test_poll_list_empties_after_burst(self):
        testbed, socket, sender = setup()
        send_burst(sender, 64)
        testbed.sim.run(until=20 * MS)
        assert not testbed.server.kernel.softnet_for(0).poll_list
        assert testbed.server.nic.irq_enabled
        assert socket.delivered == 64

    def test_second_burst_processed_after_quiescence(self):
        testbed, socket, sender = setup()
        send_burst(sender, 32)
        testbed.sim.run(until=10 * MS)
        send_burst(sender, 32)
        testbed.sim.run(until=20 * MS)
        assert socket.delivered == 64


def _high_packet_in_kernel_latency(mode, n_low):
    """In-kernel latency of one high-priority packet arriving right
    behind a burst of *n_low* low-priority packets."""
    testbed = build_testbed(mode=mode)
    high_server = testbed.add_server_container("hi", "10.0.0.10")
    low_server = testbed.add_server_container("lo", "10.0.0.11")
    high_client = testbed.add_client_container("hic", "10.0.0.100")
    low_client = testbed.add_client_container("loc", "10.0.0.101")
    high_sock = high_server.udp_socket(5000, core_id=1)
    low_server.udp_socket(6000, core_id=1)
    testbed.mark_high_priority("10.0.0.10", 5000)
    low_sender = RemoteRequestSender(testbed.client, testbed.overlay,
                                     low_client, "10.0.0.11")
    high_sender = RemoteRequestSender(testbed.client, testbed.overlay,
                                      high_client, "10.0.0.10")
    for _ in range(n_low):
        low_sender.send_udp(src_port=40001, dst_port=6000,
                            payload=None, payload_len=32)
    high_sender.send_udp(src_port=40000, dst_port=5000,
                         payload="urgent", payload_len=32)
    testbed.sim.run(until=30 * MS)
    skb = high_sock.try_recv()
    assert skb is not None
    return skb.marks["socket_enqueue"] - skb.marks["rx_ring"]


class TestBatchPreemption:
    """PRISM's preemption guarantees (paper §III-B).

    The ring itself is FCFS (§IV-D), so the high packet always pays the
    stage-1 drain of the burst ahead of it; what PRISM removes is the
    stages-2/3 queueing behind the low batches.
    """

    def test_one_batch_backlog_preempted(self):
        # One NAPI batch of low packets ahead: PRISM removes the
        # stages-2/3 wait, cutting the in-kernel time by ~40%.
        vanilla = _high_packet_in_kernel_latency(StackMode.VANILLA, 64)
        batch = _high_packet_in_kernel_latency(StackMode.PRISM_BATCH, 64)
        sync = _high_packet_in_kernel_latency(StackMode.PRISM_SYNC, 64)
        assert batch < vanilla * 0.7
        assert sync < vanilla * 0.7

    def test_large_backlog_gain_bounded_by_ring_drain(self):
        # With 3 batches of low packets ahead *in the FCFS ring*, the
        # high packet still pays the whole ring drain (stage-1
        # limitation, §IV-D); PRISM removes only the final stages-2/3
        # wait, so the gain is real but bounded.
        vanilla = _high_packet_in_kernel_latency(StackMode.VANILLA, 192)
        batch = _high_packet_in_kernel_latency(StackMode.PRISM_BATCH, 192)
        sync = _high_packet_in_kernel_latency(StackMode.PRISM_SYNC, 192)
        assert batch < vanilla * 0.95
        assert sync < vanilla * 0.95
        assert batch > vanilla * 0.5  # the ring drain is NOT jumped


class TestRuntimeModeSwitch:
    def test_mode_switch_mid_run_takes_effect(self):
        tracer = Tracer()
        testbed, socket, sender = setup(StackMode.VANILLA, tracer=tracer)
        testbed.mark_high_priority("10.0.0.10", 5000)
        trace = PollOrderTracer(tracer)
        send_burst(sender, 200)
        testbed.sim.run(until=10 * MS)
        vanilla_order = trace.device_order()[:6]
        trace.clear()
        # Operator switches to PRISM at runtime through procfs.
        testbed.server.kernel.procfs.write("/proc/prism/mode", "batch")
        send_burst(sender, 200)
        testbed.sim.run(until=20 * MS)
        prism_order = trace.device_order()[:6]
        assert vanilla_order == ["eth", "br", "eth", "veth", "br", "eth"]
        assert prism_order == ["eth", "br", "veth", "eth", "br", "veth"]
        assert socket.delivered == 400
