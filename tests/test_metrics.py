"""Tests for statistics, histograms, CDFs, and recorders."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kernel.costs import CostModel
from repro.kernel.cpu import CpuCore, Work
from repro.metrics.cdf import Cdf
from repro.metrics.histogram import LogHistogram
from repro.metrics.recorder import (
    CpuUtilizationSampler,
    LatencyRecorder,
    ThroughputMeter,
)
from repro.metrics.stats import percentile, summarize_ns
from repro.sim import Simulator


class TestStats:
    def test_summary_fields(self):
        summary = summarize_ns([1_000, 2_000, 3_000, 4_000])
        assert summary.count == 4
        assert summary.min_ns == 1_000
        assert summary.max_ns == 4_000
        assert summary.avg_ns == 2_500
        assert summary.p50_ns == 2_500

    def test_summary_empty_is_none(self):
        assert summarize_ns([]) is None

    def test_unit_conversion_properties(self):
        summary = summarize_ns([1_500])
        assert summary.avg_us == 1.5
        assert summary.p99_us == 1.5

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_percentile_interpolation(self):
        assert percentile([0, 10], 50) == 5.0

    @given(st.lists(st.integers(0, 10**9), min_size=1, max_size=200))
    def test_summary_invariants(self, samples):
        summary = summarize_ns(samples)
        assert summary.min_ns <= summary.p50_ns <= summary.p99_ns
        assert summary.p99_ns <= summary.p999_ns <= summary.max_ns
        assert summary.min_ns <= summary.avg_ns <= summary.max_ns

    def test_str_render(self):
        assert "p99" in str(summarize_ns([1000]))


class TestLogHistogram:
    def test_basic_recording(self):
        hist = LogHistogram()
        hist.record_many([100, 200, 300])
        assert len(hist) == 3
        assert hist.mean == 200
        assert hist.min_value == 100
        assert hist.max_value == 300

    def test_empty_raises(self):
        hist = LogHistogram()
        with pytest.raises(ValueError):
            hist.mean
        with pytest.raises(ValueError):
            hist.percentile(50)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            LogHistogram(buckets_per_decade=0)
        hist = LogHistogram()
        with pytest.raises(ValueError):
            hist.record(10, count=0)
        hist.record(10)
        with pytest.raises(ValueError):
            hist.percentile(-1)

    def test_percentile_bounded_relative_error(self):
        hist = LogHistogram(buckets_per_decade=36)
        samples = [1_000 + 37 * i for i in range(1_000)]
        hist.record_many(samples)
        exact = percentile(samples, 99)
        approx = hist.percentile(99)
        assert abs(approx - exact) / exact < 0.10

    def test_merge(self):
        a = LogHistogram()
        b = LogHistogram()
        a.record_many([100, 200])
        b.record_many([300, 400])
        a.merge(b)
        assert len(a) == 4
        assert a.max_value == 400

    def test_merge_resolution_mismatch(self):
        a = LogHistogram(buckets_per_decade=36)
        b = LogHistogram(buckets_per_decade=10)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_zero_and_negative_values_bucketed(self):
        hist = LogHistogram()
        hist.record(0)
        hist.record(100)
        assert len(hist) == 2
        assert hist.percentile(1) == 0.0

    def test_buckets_sorted(self):
        hist = LogHistogram()
        hist.record_many([5_000, 50, 500])
        midpoints = [mid for mid, _count in hist.buckets()]
        assert midpoints == sorted(midpoints)

    @given(st.lists(st.floats(min_value=1, max_value=1e9,
                              allow_nan=False), min_size=1, max_size=100))
    def test_percentile_within_min_max(self, values):
        hist = LogHistogram()
        hist.record_many(values)
        for pct in (0, 50, 99, 100):
            result = hist.percentile(pct)
            assert hist.min_value <= result <= hist.max_value

    @given(st.lists(st.integers(1, 10**6), min_size=1, max_size=50),
           st.lists(st.integers(1, 10**6), min_size=1, max_size=50))
    def test_merge_equals_combined(self, first, second):
        merged = LogHistogram()
        merged.record_many(first)
        other = LogHistogram()
        other.record_many(second)
        merged.merge(other)
        combined = LogHistogram()
        combined.record_many(first + second)
        assert len(merged) == len(combined)
        assert merged.percentile(50) == combined.percentile(50)
        assert math.isclose(merged.total, combined.total)


class TestCdf:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cdf([])

    def test_at_and_quantile(self):
        cdf = Cdf([10, 20, 30, 40])
        assert cdf.at(5) == 0.0
        assert cdf.at(25) == 0.5
        assert cdf.at(100) == 1.0
        assert cdf.quantile(0) == 10
        assert cdf.quantile(1) == 40

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            Cdf([1]).quantile(1.5)

    def test_points_monotonic(self):
        cdf = Cdf(list(range(100)))
        points = cdf.points(20)
        values = [v for v, _q in points]
        probs = [q for _v, q in points]
        assert values == sorted(values)
        assert probs == sorted(probs)

    def test_points_requires_two(self):
        with pytest.raises(ValueError):
            Cdf([1]).points(1)

    def test_render_ascii(self):
        art = Cdf([1_000, 2_000, 50_000]).render_ascii(width=30, height=6)
        assert "*" in art
        assert "us" in art

    @given(st.lists(st.integers(0, 10**6), min_size=2, max_size=100))
    def test_at_quantile_roundtrip(self, samples):
        cdf = Cdf(samples)
        median = cdf.quantile(0.5)
        assert cdf.at(median) >= 0.5


class TestRecorders:
    def test_latency_recorder_warmup_gating(self):
        recorder = LatencyRecorder(warmup_until_ns=100)
        recorder.record(5, at_ns=50)
        recorder.record(7, at_ns=150)
        recorder.record(9)  # no timestamp: always kept
        assert list(recorder.samples_ns) == [7, 9]
        assert recorder.discarded == 1

    def test_latency_recorder_summary_and_cdf(self):
        recorder = LatencyRecorder()
        recorder.record(100)
        recorder.record(300)
        assert recorder.summary().avg_ns == 200
        assert recorder.cdf().count == 2

    def test_throughput_meter(self):
        meter = ThroughputMeter(warmup_until_ns=1_000)
        meter.record(500, nbytes=10)   # warmup: ignored
        meter.record(1_500, nbytes=20)
        meter.record(2_500, nbytes=30)
        assert meter.count == 2
        assert meter.bytes == 50
        assert meter.first_at == 1_500
        assert meter.rate_per_sec(1_000, 1_000_000_000 + 1_000) == 2.0

    def test_throughput_meter_zero_window(self):
        meter = ThroughputMeter()
        assert meter.rate_per_sec(100, 100) == 0.0

    def test_cpu_sampler_window(self):
        sim = Simulator()
        core = CpuCore(sim, 0, CostModel().replace(cstate_levels=()))

        def thread():
            yield Work(40_000)

        sampler = CpuUtilizationSampler(core, lambda: sim.now)
        core.spawn(thread())
        sim.run(until=100_000)
        assert sampler.utilization() == pytest.approx(0.4)
        sampler.mark()
        sim.run(until=200_000)
        assert sampler.utilization() == 0.0

    def test_cpu_sampler_softirq_fraction(self):
        sim = Simulator()
        core = CpuCore(sim, 0, CostModel().replace(cstate_levels=()))

        def handler():
            yield 30_000

        core.register_softirq(3, handler)
        sampler = CpuUtilizationSampler(core, lambda: sim.now)
        core.raise_softirq(3)
        sim.run(until=100_000)
        assert sampler.softirq_fraction() == pytest.approx(0.3)
