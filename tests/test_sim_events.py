"""Unit tests for simulator events."""

import pytest

from repro.sim import AnyOf, Event, Simulator, Timeout
from repro.sim.events import EventAlreadyTriggered


def test_event_starts_untriggered():
    sim = Simulator()
    event = sim.event()
    assert not event.triggered
    assert not event.processed


def test_succeed_delivers_value():
    sim = Simulator()
    event = sim.event()
    got = []
    event.add_callback(lambda e: got.append(e.value))
    event.succeed(7)
    sim.run()
    assert got == [7]
    assert event.processed
    assert event.ok


def test_succeed_twice_raises():
    sim = Simulator()
    event = sim.event()
    event.succeed()
    with pytest.raises(EventAlreadyTriggered):
        event.succeed()


def test_fail_delivers_exception():
    sim = Simulator()
    event = sim.event()
    boom = ValueError("boom")
    got = []
    event.add_callback(lambda e: got.append(e.exception))
    event.fail(boom)
    sim.run()
    assert got == [boom]
    assert not event.ok


def test_fail_requires_exception_instance():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")  # type: ignore[arg-type]


def test_value_before_trigger_raises():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(AttributeError):
        _ = event.value


def test_callback_added_after_processing_runs_immediately():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    sim.run()
    got = []
    event.add_callback(lambda e: got.append(e.value))
    assert got == [1]


def test_timeout_fires_after_delay():
    sim = Simulator()
    timeout = sim.timeout(250, value="done")
    got = []
    timeout.add_callback(lambda e: got.append((sim.now, e.value)))
    sim.run()
    assert got == [(250, "done")]


def test_timeout_negative_delay_raises():
    sim = Simulator()
    with pytest.raises(ValueError):
        Timeout(sim, -1)


def test_anyof_fires_on_first():
    sim = Simulator()
    slow = sim.timeout(100)
    fast = sim.timeout(10)
    any_of = AnyOf(sim, [slow, fast])
    got = []
    any_of.add_callback(lambda e: got.append((sim.now, e.value)))
    sim.run()
    assert got == [(10, fast)]


def test_anyof_requires_events():
    sim = Simulator()
    with pytest.raises(ValueError):
        AnyOf(sim, [])


def test_anyof_only_fires_once():
    sim = Simulator()
    a = sim.timeout(10)
    b = sim.timeout(20)
    any_of = AnyOf(sim, [a, b])
    fired = []
    any_of.add_callback(lambda e: fired.append(sim.now))
    sim.run()
    assert fired == [10]


def test_anyof_detaches_from_losing_children():
    """The winner must unhook _on_child from every loser, so a long-lived
    loser event does not pin the completed AnyOf in memory."""
    sim = Simulator()
    winner = sim.timeout(10)
    loser_a = sim.event()   # never fires in this test
    loser_b = sim.timeout(500)
    any_of = AnyOf(sim, [winner, loser_a, loser_b])
    sim.run(until=20)
    assert any_of.triggered
    assert any_of.value is winner
    assert any_of._on_child not in loser_a.callbacks
    assert any_of._on_child not in loser_b.callbacks
    # Firing a loser later is inert — the AnyOf value is unchanged.
    loser_a.succeed("late")
    sim.run()
    assert any_of.value is winner


def test_remove_callback_absent_is_noop():
    sim = Simulator()
    event = sim.event()
    event.remove_callback(lambda e: None)  # never added: must not raise
    assert event.callbacks == []


def test_event_repr_shows_state():
    sim = Simulator()
    event = Event(sim, name="rx")
    assert "pending" in repr(event)
    event.succeed()
    assert "triggered" in repr(event)
    sim.run()
    assert "processed" in repr(event)
