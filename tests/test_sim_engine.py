"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.sim import Simulator
from repro.sim.engine import SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0


def test_schedule_runs_callback_at_delay():
    sim = Simulator()
    fired = []
    sim.schedule(100, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [100]


def test_schedule_zero_delay_runs_at_current_time():
    sim = Simulator()
    fired = []
    sim.schedule(0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [0]


def test_schedule_order_is_time_sorted():
    sim = Simulator()
    order = []
    sim.schedule(300, lambda: order.append("c"))
    sim.schedule(100, lambda: order.append("a"))
    sim.schedule(200, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_same_time_fifo_ordering():
    sim = Simulator()
    order = []
    for i in range(10):
        sim.schedule(50, lambda i=i: order.append(i))
    sim.run()
    assert order == list(range(10))


def test_schedule_with_args():
    sim = Simulator()
    got = []
    sim.schedule(10, got.append, 42)
    sim.run()
    assert got == [42]


def test_schedule_at_absolute_time():
    sim = Simulator()
    fired = []
    sim.schedule_at(500, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [500]


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(50, lambda: None)


def test_cancel_prevents_callback():
    sim = Simulator()
    fired = []
    handle = sim.schedule(100, lambda: fired.append(1))
    handle.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(100, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_run_until_stops_clock_at_until():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.schedule(900, lambda: None)
    sim.run(until=500)
    assert sim.now == 500
    # The 900 event is still pending.
    assert sim.peek() == 900


def test_run_until_advances_clock_even_with_empty_queue():
    sim = Simulator()
    sim.run(until=1000)
    assert sim.now == 1000


def test_nested_scheduling_from_callback():
    sim = Simulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.schedule(50, lambda: fired.append(("inner", sim.now)))

    sim.schedule(100, outer)
    sim.run()
    assert fired == [("outer", 100), ("inner", 150)]


def test_peek_skips_cancelled_entries():
    sim = Simulator()
    handle = sim.schedule(100, lambda: None)
    sim.schedule(200, lambda: None)
    handle.cancel()
    assert sim.peek() == 200


def test_step_returns_false_on_empty_queue():
    sim = Simulator()
    assert sim.step() is False


def test_step_processes_single_occurrence():
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: fired.append("a"))
    sim.schedule(20, lambda: fired.append("b"))
    assert sim.step() is True
    assert fired == ["a"]
    assert sim.now == 10
