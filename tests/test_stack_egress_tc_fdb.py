"""Tests for the egress path (builders, TSO, encap), tc qdiscs, and FDB."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kernel.core import Kernel
from repro.packet.addr import Ipv4Address, MacAddress
from repro.packet.headers import IPPROTO_TCP
from repro.packet.packet import Packet
from repro.sim import Simulator
from repro.stack.egress import (
    EgressPath,
    EncapInfo,
    apply_encap,
    build_tcp_segments,
    build_udp_packet,
)
from repro.stack.fdb import Fdb
from repro.stack.tc import PfifoQdisc, PrioQdisc
from repro.stack.tcp import TcpMessage, TcpSegment

MAC_A = MacAddress(1)
MAC_B = MacAddress(2)
IP_A = Ipv4Address("10.0.0.1")
IP_B = Ipv4Address("10.0.0.2")

ENCAP = EncapInfo(vni=42, outer_src_mac=MacAddress(3),
                  outer_dst_mac=MacAddress(4),
                  outer_src_ip=Ipv4Address("192.168.1.1"),
                  outer_dst_ip=Ipv4Address("192.168.1.2"))


def kwargs(**extra):
    base = dict(src_mac=MAC_A, dst_mac=MAC_B, src_ip=IP_A, dst_ip=IP_B,
                src_port=1000, dst_port=2000)
    base.update(extra)
    return base


class TestBuilders:
    def test_udp_packet_lengths(self):
        packet = build_udp_packet(payload="p", payload_len=100, **kwargs())
        assert packet.wire_len == 14 + 20 + 8 + 100
        assert packet.ip.total_length == 20 + 8 + 100
        assert packet.l4.total_length == 8 + 100

    def test_tcp_segmentation_respects_mss(self):
        message = TcpMessage(payload="m", length=3_000)
        segments = build_tcp_segments(message=message, mss=1_448, **kwargs())
        assert len(segments) == 3
        assert [s.payload_len for s in segments] == [1_448, 1_448, 104]
        assert all(s.ip.protocol == IPPROTO_TCP for s in segments)

    def test_tcp_segment_payload_records_offsets(self):
        message = TcpMessage(payload="m", length=250)
        segments = build_tcp_segments(message=message, mss=100, **kwargs())
        payloads = [s.payload for s in segments]
        assert all(isinstance(p, TcpSegment) for p in payloads)
        assert [p.offset for p in payloads] == [0, 100, 200]
        assert payloads[-1].is_last and not payloads[0].is_last

    def test_tcp_seq_numbers_are_byte_offsets(self):
        message = TcpMessage(payload="m", length=250)
        segments = build_tcp_segments(message=message, mss=100,
                                      seq_start=500, **kwargs())
        assert [s.l4.seq for s in segments] == [500, 600, 700]

    def test_empty_message_still_sends_one_segment(self):
        message = TcpMessage(payload="m", length=0)
        segments = build_tcp_segments(message=message, mss=100, **kwargs())
        assert len(segments) == 1

    def test_invalid_mss(self):
        message = TcpMessage(payload="m", length=10)
        with pytest.raises(ValueError):
            build_tcp_segments(message=message, mss=0, **kwargs())

    @given(st.integers(1, 70_000), st.integers(64, 9_000))
    def test_segmentation_conserves_bytes(self, length, mss):
        message = TcpMessage(payload="m", length=length)
        segments = build_tcp_segments(message=message, mss=mss, **kwargs())
        assert sum(s.payload_len for s in segments) == length
        assert all(s.payload_len <= mss for s in segments)

    def test_apply_encap_wraps(self):
        inner = build_udp_packet(payload=None, payload_len=10, **kwargs())
        outer = apply_encap(inner, ENCAP)
        assert outer.is_vxlan
        assert outer.vxlan.vni == 42
        assert outer.ip.dst == ENCAP.outer_dst_ip


class TestEgressPath:
    def _make(self):
        sim = Simulator()
        kernel = Kernel(sim, n_cpus=1)
        sent = []
        egress = EgressPath(kernel, transmit=sent.append)
        return sim, kernel, egress, sent

    def _drive(self, sim, kernel, generator):
        kernel.cpu(0).spawn(generator)
        sim.run()

    def test_udp_send_transmits_and_charges(self):
        sim, kernel, egress, sent = self._make()
        self._drive(sim, kernel, egress.udp_send(
            payload="x", payload_len=64, **kwargs()))
        assert len(sent) == 1
        expected = kernel.costs.egress_cost(sent[0].wire_len)
        assert sim.now == expected

    def test_udp_send_with_encap(self):
        sim, kernel, egress, sent = self._make()
        self._drive(sim, kernel, egress.udp_send(
            payload=None, payload_len=64, encap=ENCAP, **kwargs()))
        assert sent[0].is_vxlan

    def test_tcp_send_tso_one_charge_many_segments(self):
        sim, kernel, egress, sent = self._make()
        message = TcpMessage(payload="m", length=10_000)
        self._drive(sim, kernel, egress.tcp_send_message(
            message=message, **kwargs()))
        assert len(sent) == 7  # ceil(10000/1448)
        # TSO: one egress_pkt charge + per-segment + per-byte.
        total_bytes = sum(p.wire_len for p in sent)
        expected = (kernel.costs.egress_pkt_ns
                    + kernel.costs.tso_segment_ns * len(sent)
                    + int(kernel.costs.egress_per_byte_ns * total_bytes))
        assert sim.now == expected

    def test_counters(self):
        sim, kernel, egress, sent = self._make()
        self._drive(sim, kernel, egress.udp_send(
            payload=None, payload_len=64, **kwargs()))
        assert egress.packets_sent == 1
        assert egress.bytes_sent == sent[0].wire_len

    def test_qdisc_in_path(self):
        sim, kernel, _egress, _ = self._make()
        sent = []
        qdisc = PfifoQdisc(capacity=10)
        egress = EgressPath(kernel, transmit=sent.append, qdisc=qdisc)
        self._drive(sim, kernel, egress.udp_send(
            payload=None, payload_len=64, **kwargs()))
        assert len(sent) == 1
        assert len(qdisc) == 0


class TestQdiscs:
    def _packet(self, dport=2000):
        return build_udp_packet(payload=None, payload_len=10,
                                **kwargs(dst_port=dport))

    def test_pfifo_order(self):
        qdisc = PfifoQdisc(capacity=3)
        packets = [self._packet() for _ in range(3)]
        for packet in packets:
            assert qdisc.enqueue(packet)
        assert [qdisc.dequeue() for _ in range(3)] == packets
        assert qdisc.dequeue() is None

    def test_pfifo_overflow(self):
        qdisc = PfifoQdisc(capacity=1)
        assert qdisc.enqueue(self._packet())
        assert not qdisc.enqueue(self._packet())
        assert qdisc.dropped == 1

    def test_prio_strict_ordering(self):
        qdisc = PrioQdisc(bands=2,
                          classify=lambda p: 0 if p.l4.dst_port == 53 else 1)
        bulk = self._packet(dport=2000)
        dns = self._packet(dport=53)
        qdisc.enqueue(bulk)
        qdisc.enqueue(dns)
        assert qdisc.dequeue() is dns
        assert qdisc.dequeue() is bulk

    def test_prio_default_classifier_uses_last_band(self):
        qdisc = PrioQdisc(bands=3)
        packet = self._packet()
        qdisc.enqueue(packet)
        assert len(qdisc.bands[2]) == 1

    def test_prio_band_clamping(self):
        qdisc = PrioQdisc(bands=2, classify=lambda p: 99)
        qdisc.enqueue(self._packet())
        assert len(qdisc.bands[1]) == 1

    def test_prio_requires_bands(self):
        with pytest.raises(ValueError):
            PrioQdisc(bands=0)

    def test_len_totals(self):
        qdisc = PrioQdisc(bands=2, classify=lambda p: 0)
        qdisc.enqueue(self._packet())
        qdisc.enqueue(self._packet())
        assert len(qdisc) == 2


class TestFdb:
    class Port:
        def __init__(self, name):
            self.name = name

    def test_learn_and_lookup(self):
        fdb = Fdb()
        port = self.Port("p1")
        fdb.learn(MAC_A, port)
        assert fdb.lookup(MAC_A) is port
        assert fdb.learned == 1

    def test_relearn_moves_port(self):
        fdb = Fdb()
        p1, p2 = self.Port("p1"), self.Port("p2")
        fdb.learn(MAC_A, p1)
        fdb.learn(MAC_A, p2)
        assert fdb.lookup(MAC_A) is p2
        assert fdb.learned == 2

    def test_relearn_same_port_not_counted(self):
        fdb = Fdb()
        port = self.Port("p1")
        fdb.learn(MAC_A, port)
        fdb.learn(MAC_A, port)
        assert fdb.learned == 1

    def test_broadcast_never_learned_or_found(self):
        fdb = Fdb()
        fdb.learn(MacAddress.broadcast(), self.Port("p1"))
        assert len(fdb) == 0
        assert fdb.lookup(MacAddress.broadcast()) is None

    def test_miss_counts(self):
        fdb = Fdb()
        assert fdb.lookup(MAC_B) is None
        assert fdb.misses == 1

    def test_forget(self):
        fdb = Fdb()
        fdb.learn(MAC_A, self.Port("p1"))
        assert fdb.forget(MAC_A)
        assert not fdb.forget(MAC_A)
        assert fdb.lookup(MAC_A) is None

    def test_entries(self):
        fdb = Fdb()
        fdb.learn(MAC_A, self.Port("p1"))
        fdb.learn(MAC_B, self.Port("p2"))
        assert set(fdb.entries()) == {MAC_A, MAC_B}
