"""Tests for the O(1)-memory streaming latency estimators."""

from __future__ import annotations

import random

import pytest

from repro.metrics.recorder import LatencyRecorder, ThroughputMeter
from repro.metrics.stats import percentile
from repro.metrics.streaming import (
    P2Quantile,
    ReservoirSample,
    StreamingQuantiles,
)


def _synthetic_latencies(n: int, seed: int = 7) -> list:
    """Deterministic heavy-tailed latency stream (lognormal, ~60us median).

    Continuous on purpose: P² interpolates marker heights, so a density
    gap sitting exactly on a tracked quantile is its worst case — real
    latency distributions are continuous where it matters.
    """
    rng = random.Random(seed)
    return [rng.lognormvariate(11.0, 0.6) for _ in range(n)]


class TestP2Quantile:
    def test_exact_until_five_samples(self):
        p50 = P2Quantile(0.5)
        for x in (30, 10, 20):
            p50.add(x)
        assert p50.value == 20

    def test_rejects_degenerate_quantiles(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_empty_estimator_raises(self):
        with pytest.raises(ValueError):
            P2Quantile(0.5).value

    @pytest.mark.parametrize("q,tolerance", [(0.5, 0.05), (0.9, 0.05),
                                             (0.99, 0.15)])
    def test_tracks_exact_percentile_within_tolerance(self, q, tolerance):
        samples = _synthetic_latencies(50_000)
        estimator = P2Quantile(q)
        for x in samples:
            estimator.add(x)
        exact = percentile(samples, q * 100)
        assert abs(estimator.value - exact) <= tolerance * exact

    def test_constant_memory(self):
        """The marker state never grows, no matter the stream length."""
        estimator = P2Quantile(0.99)
        for x in _synthetic_latencies(20_000):
            estimator.add(x)
        assert len(estimator._heights) == 5
        assert len(estimator._positions) == 5
        assert estimator.count == 20_000


class TestStreamingQuantiles:
    def test_exact_moments(self):
        stream = StreamingQuantiles()
        for x in (100, 300, 200):
            stream.add(x)
        summary = stream.summary()
        assert summary.count == 3
        assert summary.min_ns == 100
        assert summary.max_ns == 300
        assert summary.avg_ns == 200

    def test_empty_summary_is_none(self):
        assert StreamingQuantiles().summary() is None

    def test_summary_close_to_exact_battery(self):
        samples = _synthetic_latencies(50_000)
        stream = StreamingQuantiles()
        for x in samples:
            stream.add(x)
        summary = stream.summary()
        assert summary.p50_ns == pytest.approx(percentile(samples, 50),
                                               rel=0.05)
        assert summary.p90_ns == pytest.approx(percentile(samples, 90),
                                               rel=0.05)
        assert summary.p99_ns == pytest.approx(percentile(samples, 99),
                                               rel=0.15)


class TestReservoirSample:
    def test_keeps_everything_below_capacity(self):
        reservoir = ReservoirSample(10, seed=1)
        for x in range(5):
            reservoir.add(x)
        assert sorted(reservoir.samples) == [0, 1, 2, 3, 4]

    def test_bounded_at_capacity(self):
        reservoir = ReservoirSample(64, seed=1)
        for x in range(10_000):
            reservoir.add(x)
        assert len(reservoir) == 64
        assert reservoir.count == 10_000

    def test_deterministic_for_fixed_seed(self):
        def run(seed):
            reservoir = ReservoirSample(32, seed=seed)
            for x in range(2_000):
                reservoir.add(x)
            return reservoir.samples

        assert run(42) == run(42)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ReservoirSample(0)


class TestStreamingRecorder:
    def test_streaming_mode_stores_no_samples(self):
        recorder = LatencyRecorder(streaming=True, reservoir_k=128)
        for x in _synthetic_latencies(20_000):
            recorder.record(int(x))
        assert len(recorder.samples_ns) == 0
        assert len(recorder) == 20_000
        assert recorder.cdf().count == 128

    def test_streaming_summary_close_to_exact(self):
        exact = LatencyRecorder()
        streaming = LatencyRecorder(streaming=True)
        for x in _synthetic_latencies(50_000):
            exact.record(int(x))
            streaming.record(int(x))
        a, b = exact.summary(), streaming.summary()
        assert b.count == a.count
        assert b.min_ns == a.min_ns
        assert b.max_ns == a.max_ns
        assert b.avg_ns == pytest.approx(a.avg_ns, rel=1e-9)
        assert b.p50_ns == pytest.approx(a.p50_ns, rel=0.05)
        assert b.p99_ns == pytest.approx(a.p99_ns, rel=0.15)

    def test_streaming_mode_respects_warmup(self):
        recorder = LatencyRecorder(warmup_until_ns=100, streaming=True)
        recorder.record(5, at_ns=50)
        recorder.record(7, at_ns=150)
        assert recorder.discarded == 1
        assert recorder.summary().count == 1

    def test_exact_mode_uses_compact_storage(self):
        recorder = LatencyRecorder()
        recorder.record(7)
        recorder.record(9)
        assert list(recorder.samples_ns) == [7, 9]
        assert recorder.summary().avg_ns == 8


class TestThroughputMeterDiscarded:
    def test_warmup_events_are_counted_as_discarded(self):
        meter = ThroughputMeter(warmup_until_ns=1_000)
        meter.record(500, nbytes=100)
        meter.record(1_500, nbytes=200)
        assert meter.count == 1
        assert meter.bytes == 200
        assert meter.discarded == 1

    def test_summary_exposes_discarded(self):
        meter = ThroughputMeter(warmup_until_ns=10)
        meter.record(5)
        meter.record(20)
        summary = meter.summary()
        assert summary == {"count": 1, "bytes": 0, "discarded": 1,
                           "first_at": 20, "last_at": 20}
