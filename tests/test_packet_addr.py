"""Tests for MAC/IPv4 address value types."""

import pytest

from repro.packet import Ipv4Address, MacAddress


class TestMacAddress:
    def test_parse_and_format_round_trip(self):
        mac = MacAddress("02:42:ac:11:00:02")
        assert str(mac) == "02:42:ac:11:00:02"

    def test_from_int(self):
        mac = MacAddress(0x024200000001)
        assert str(mac) == "02:42:00:00:00:01"

    def test_copy_constructor(self):
        a = MacAddress("aa:bb:cc:dd:ee:ff")
        assert MacAddress(a) == a

    def test_invalid_string(self):
        with pytest.raises(ValueError):
            MacAddress("not-a-mac")

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)

    def test_wrong_type(self):
        with pytest.raises(TypeError):
            MacAddress(3.14)  # type: ignore[arg-type]

    def test_broadcast(self):
        assert MacAddress.broadcast().is_broadcast
        assert str(MacAddress.broadcast()) == "ff:ff:ff:ff:ff:ff"
        assert not MacAddress(1).is_broadcast

    def test_equality_and_hash(self):
        a = MacAddress("02:42:ac:11:00:02")
        b = MacAddress("02:42:ac:11:00:02")
        c = MacAddress("02:42:ac:11:00:03")
        assert a == b
        assert a != c
        assert hash(a) == hash(b)
        assert {a: 1}[b] == 1

    def test_immutable(self):
        mac = MacAddress(1)
        with pytest.raises(AttributeError):
            mac.value = 2  # type: ignore[misc]

    def test_to_bytes(self):
        assert MacAddress("00:00:00:00:00:01").to_bytes() == b"\x00\x00\x00\x00\x00\x01"


class TestIpv4Address:
    def test_parse_and_format_round_trip(self):
        ip = Ipv4Address("10.0.1.200")
        assert str(ip) == "10.0.1.200"

    def test_from_int(self):
        assert str(Ipv4Address(0x0A000001)) == "10.0.0.1"

    def test_copy_constructor(self):
        a = Ipv4Address("1.2.3.4")
        assert Ipv4Address(a) == a

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""])
    def test_invalid_strings(self, bad):
        with pytest.raises(ValueError):
            Ipv4Address(bad)

    def test_out_of_range_int(self):
        with pytest.raises(ValueError):
            Ipv4Address(1 << 32)

    def test_wrong_type(self):
        with pytest.raises(TypeError):
            Ipv4Address([1, 2, 3, 4])  # type: ignore[arg-type]

    def test_equality_and_hash(self):
        a = Ipv4Address("192.168.0.1")
        b = Ipv4Address("192.168.0.1")
        assert a == b
        assert hash(a) == hash(b)
        assert a != Ipv4Address("192.168.0.2")

    def test_mac_and_ip_never_equal(self):
        assert Ipv4Address(5) != MacAddress(5)

    def test_to_bytes(self):
        assert Ipv4Address("1.2.3.4").to_bytes() == b"\x01\x02\x03\x04"

    def test_immutable(self):
        ip = Ipv4Address(1)
        with pytest.raises(AttributeError):
            ip.value = 2  # type: ignore[misc]
