"""Golden digest tests for the packet-path fast lane.

The fast-path machinery (skb pooling, memoized costs, cached header
building, untraced fast lanes) is a pure optimization: it must never
change a single byte of an :class:`ExperimentResult`.  These tests pin
that contract three ways:

1. **Pinned goldens** — the digest of a canonical Fig. 11 load-sweep
   cell for each stack mode and network type is hard-coded.  Any change
   to simulation semantics (intended or not) trips these.  The digests
   are independent of ``PYTHONHASHSEED`` (verified across randomized
   and fixed-seed processes) because results are aggregates, not raw
   object dumps.
2. **Pool-off equivalence** — re-running with the skb free-list pool
   disabled (fresh ``SKBuff`` per packet, like the seed code) must give
   the identical digest, proving recycling reuses objects without
   leaking state between packets.
3. **Run-to-run isolation** — two back-to-back runs in one process are
   digest-identical, pinning the fix for the cross-experiment skb-id
   leak (ids are now allocated per-kernel by the pool, not from a
   process-global counter).
"""

from __future__ import annotations

import pytest

from repro.bench.experiment import (
    ExperimentConfig,
    _run_experiment,
    run_experiment,
    run_traced_experiment,
)
from repro.bench.runner import result_digest
from repro.prism.mode import StackMode
from repro.sim.units import MS


def _config(mode: StackMode, network: str) -> ExperimentConfig:
    return ExperimentConfig(
        mode=mode, network=network, fg_rate_pps=2_000,
        bg_rate_pps=120_000.0, duration_ns=12 * MS, warmup_ns=3 * MS)


#: scenario -> (untraced digest, traced digest).  Traced results differ
#: only by the appended ``stage_breakdown`` — the measurements match.
GOLD = {
    "overlay-vanilla": (
        _config(StackMode.VANILLA, "overlay"),
        "a9a9e76532fb680d371fb0959f1bf893c9cf6ebc1279203ada0178ea29d2456f",
        "78eabe5891a9010c2108e0a3047f58d5cba050bcaab5a10035ba9f43a52b44da",
    ),
    "overlay-prism-batch": (
        _config(StackMode.PRISM_BATCH, "overlay"),
        "4fbe1b50bc0e764db9008229175bbf05b3c44f26d724d4d36c13df63f4581580",
        "fda509dd71d4d14071560c80ae6f648041babb320afe09c7ae827136d32c507c",
    ),
    "overlay-prism-sync": (
        _config(StackMode.PRISM_SYNC, "overlay"),
        "e16aa0a11d40aedb259b9a6f842d2e0e7b8814819aa7e295c7e2f0ee18c847d7",
        "d533f6c1b46112e999f02f820bddab42b1d5cf50c398c008439e7b890f02b414",
    ),
    "host-vanilla": (
        _config(StackMode.VANILLA, "host"),
        "c20aaf77035c6ac3d723474655d5b345d3c9296500ec612b8441d650ebaf3252",
        "fd1ab73ca2f25adca45ff58673d1962b80ab39b79b242c0393d68570a152e336",
    ),
}

SCENARIOS = sorted(GOLD)


def _disable_pool(testbed) -> None:
    testbed.server.kernel.skb_pool.enabled = False


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_untraced_digest_matches_golden(scenario):
    config, untraced, _ = GOLD[scenario]
    assert result_digest(run_experiment(config)) == untraced


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_traced_digest_matches_golden(scenario):
    config, _, traced = GOLD[scenario]
    assert result_digest(run_traced_experiment(config).result) == traced


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_pool_disabled_run_is_identical(scenario):
    """Recycled skbs carry zero observable state: pool off == pool on."""
    config, untraced, _ = GOLD[scenario]
    result = _run_experiment(config, attach=_disable_pool)
    assert result_digest(result) == untraced


def test_traced_measurements_match_untraced():
    """Tracing only observes: measurements identical, breakdown added."""
    config, untraced, _ = GOLD["overlay-vanilla"]
    traced = run_traced_experiment(config).result
    traced.stage_breakdown = None
    assert result_digest(traced) == untraced


def test_back_to_back_runs_are_identical():
    """Regression: per-experiment skb ids — no cross-run counter leak."""
    config, untraced, _ = GOLD["overlay-vanilla"]
    first = result_digest(run_experiment(config))
    second = result_digest(run_experiment(config))
    assert first == second == untraced


def test_run_after_traced_run_is_identical():
    """A traced run leaves no state behind that skews the next run."""
    config, untraced, _ = GOLD["overlay-prism-batch"]
    run_traced_experiment(config)
    assert result_digest(run_experiment(config)) == untraced
