"""Golden digest tests for the packet-path fast lane.

The fast-path machinery (skb pooling, memoized costs, cached header
building, untraced fast lanes) is a pure optimization: it must never
change a single byte of an :class:`ExperimentResult`.  These tests pin
that contract three ways:

1. **Pinned goldens** — the digest of a canonical Fig. 11 load-sweep
   cell for each stack mode and network type is hard-coded.  Any change
   to simulation semantics (intended or not) trips these.  The digests
   are independent of ``PYTHONHASHSEED`` (verified across randomized
   and fixed-seed processes) because results are aggregates, not raw
   object dumps.
2. **Pool-off equivalence** — re-running with the skb free-list pool
   disabled (fresh ``SKBuff`` per packet, like the seed code) must give
   the identical digest, proving recycling reuses objects without
   leaking state between packets.
3. **Run-to-run isolation** — two back-to-back runs in one process are
   digest-identical, pinning the fix for the cross-experiment skb-id
   leak (ids are now allocated per-kernel by the pool, not from a
   process-global counter).
"""

from __future__ import annotations

import pytest

from repro.bench.experiment import (
    ExperimentConfig,
    _run_experiment,
    run_experiment,
    run_traced_experiment,
)
from repro.bench.runner import result_digest
from repro.prism.mode import StackMode
from repro.sim.units import MS


def _config(mode: StackMode, network: str) -> ExperimentConfig:
    return ExperimentConfig(
        mode=mode, network=network, fg_rate_pps=2_000,
        bg_rate_pps=120_000.0, duration_ns=12 * MS, warmup_ns=3 * MS)


#: scenario -> (untraced digest, traced digest).  Traced results differ
#: only by the appended ``stage_breakdown`` — the measurements match.
GOLD = {
    "overlay-vanilla": (
        _config(StackMode.VANILLA, "overlay"),
        "57bc8551582a7e3e31b3ab4694ce8a64f2820195e303d794c89c080b9a2d24c7",
        "1a29f457449dfcd385663e6490dcdce851946061be41bc604f6d14b003a36cd6",
    ),
    "overlay-prism-batch": (
        _config(StackMode.PRISM_BATCH, "overlay"),
        "67d4510e4ed4d5aef1c0a9b8e4c108e93221d805a4bd72a173c1ab09a6d8e19a",
        "911eaa87b9ab44fd1455fcbda3f3f6de9455cf4299137e7f7482c70bc2715f82",
    ),
    "overlay-prism-sync": (
        _config(StackMode.PRISM_SYNC, "overlay"),
        "e3b2216c1cfc8abc68ee89d53b9fb0e4c5b397fbd4d261972bf5eaae7096bd0a",
        "e27d810003be532272151bf94b8fa6961c0d5cbe7d05f270260f40f298bcb7d4",
    ),
    "host-vanilla": (
        _config(StackMode.VANILLA, "host"),
        "e46de6c5374ca2cffffb25d5d79946ea0478102db5f93c6f67d34734e0f8d7d1",
        "1f149719b54fbcecd5c93f6f7bca0083dc9c6f544c68404d3c3c8980e09d25fe",
    ),
}

SCENARIOS = sorted(GOLD)


def _disable_pool(testbed) -> None:
    testbed.server.kernel.skb_pool.enabled = False


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_untraced_digest_matches_golden(scenario):
    config, untraced, _ = GOLD[scenario]
    assert result_digest(run_experiment(config)) == untraced


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_traced_digest_matches_golden(scenario):
    config, _, traced = GOLD[scenario]
    assert result_digest(run_traced_experiment(config).result) == traced


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_pool_disabled_run_is_identical(scenario):
    """Recycled skbs carry zero observable state: pool off == pool on."""
    config, untraced, _ = GOLD[scenario]
    result = _run_experiment(config, attach=_disable_pool)
    assert result_digest(result) == untraced


def test_traced_measurements_match_untraced():
    """Tracing only observes: measurements identical, breakdown added."""
    config, untraced, _ = GOLD["overlay-vanilla"]
    traced = run_traced_experiment(config).result
    traced.stage_breakdown = None
    assert result_digest(traced) == untraced


def test_back_to_back_runs_are_identical():
    """Regression: per-experiment skb ids — no cross-run counter leak."""
    config, untraced, _ = GOLD["overlay-vanilla"]
    first = result_digest(run_experiment(config))
    second = result_digest(run_experiment(config))
    assert first == second == untraced


def test_run_after_traced_run_is_identical():
    """A traced run leaves no state behind that skews the next run."""
    config, untraced, _ = GOLD["overlay-prism-batch"]
    run_traced_experiment(config)
    assert result_digest(run_experiment(config)) == untraced
