"""Tests for FaultPlan: parsing, serialization, and config integration."""

import json
import pickle

import pytest

from repro.bench.experiment import ExperimentConfig
from repro.bench.runner import _jsonable, config_key
from repro.faults import (
    FaultPlan,
    IrqLoss,
    LinkFlap,
    PacketLoss,
    RetryPolicy,
    RingBurst,
    SkbAllocFailure,
)
from repro.faults.plan import _time_to_ns
from repro.sim.units import MS, US


class TestTimeParsing:
    def test_suffixes(self):
        assert _time_to_ns("80ms") == 80 * MS
        assert _time_to_ns("50us") == 50 * US
        assert _time_to_ns("1s") == 1_000_000_000
        assert _time_to_ns("7ns") == 7
        assert _time_to_ns("1234") == 1234

    def test_fractional(self):
        assert _time_to_ns("1.5ms") == 1_500_000

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            _time_to_ns("fast")


class TestParse:
    def test_full_spec(self):
        plan = FaultPlan.parse(
            "burst@80ms x2.5; loss:eth:0.1@100ms-200ms; loss:wire:0.05; "
            "skbfail:0.01; irqloss:0.02; flap@50ms+2ms!; seed=3; "
            "retries=7; timeout=4ms; backoff=1.5; jitter=0.2")
        assert plan.seed == 3
        assert plan.ring_bursts == (RingBurst(at_ns=80 * MS, factor=2.5),)
        assert plan.losses == (
            PacketLoss(site="eth", p=0.1, start_ns=100 * MS, end_ns=200 * MS),
            PacketLoss(site="wire", p=0.05))
        assert plan.skb_alloc == SkbAllocFailure(p=0.01)
        assert plan.irq_loss == IrqLoss(p=0.02)
        assert plan.link_flaps == (
            LinkFlap(at_ns=50 * MS, duration_ns=2 * MS, flush_ring=True),)
        assert plan.retry == RetryPolicy(timeout_ns=4 * MS, max_retries=7,
                                         backoff_factor=1.5, jitter_frac=0.2)

    def test_defaults(self):
        plan = FaultPlan.parse("burst@10ms")
        assert plan.ring_bursts[0].factor == 2.0
        assert plan.seed == 1
        assert plan.retry == RetryPolicy()

    def test_empty_clauses_ignored(self):
        assert FaultPlan.parse("; burst@1ms ;;") == \
            FaultPlan(ring_bursts=(RingBurst(at_ns=1 * MS),))

    def test_unknown_clause_raises_with_offending_text(self):
        with pytest.raises(ValueError, match="bananas"):
            FaultPlan.parse("burst@1ms; bananas")

    def test_malformed_clause_raises(self):
        with pytest.raises(ValueError, match="burst@"):
            FaultPlan.parse("burst@soon")


class TestLossWindows:
    def test_unbounded(self):
        loss = PacketLoss(site="eth", p=0.5)
        assert loss.active_at(0) and loss.active_at(10**12)

    def test_window_half_open(self):
        loss = PacketLoss(site="eth", p=0.5, start_ns=100, end_ns=200)
        assert not loss.active_at(99)
        assert loss.active_at(100)
        assert loss.active_at(199)
        assert not loss.active_at(200)


class TestPlanValueSemantics:
    def plan(self):
        return FaultPlan.parse(
            "burst@80ms; loss:eth:0.1@1ms-2ms; skbfail:0.01; irqloss:0.02; "
            "flap@50ms+2ms!; seed=9; retries=3; timeout=2ms")

    def test_hashable(self):
        assert hash(self.plan()) == hash(self.plan())

    def test_picklable(self):
        plan = self.plan()
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_dict_round_trip_through_json(self):
        plan = self.plan()
        wire = json.loads(json.dumps(plan.to_dict()))
        assert FaultPlan.from_dict(wire) == plan

    def test_from_dict_rejects_unknown_schema(self):
        data = self.plan().to_dict()
        data["schema"] = 99
        with pytest.raises(ValueError):
            FaultPlan.from_dict(data)

    def test_replace(self):
        plan = self.plan()
        assert plan.replace(seed=4).seed == 4
        assert plan.replace(seed=4).losses == plan.losses


class TestConfigIntegration:
    """The faults field must not perturb loss-free configs."""

    def test_none_is_omitted_from_to_dict(self):
        assert "faults" not in ExperimentConfig().to_dict()

    def test_none_is_omitted_from_jsonable(self):
        assert "faults" not in _jsonable(ExperimentConfig())

    def test_config_round_trips_with_plan(self):
        config = ExperimentConfig(faults=FaultPlan.parse("burst@1ms"))
        wire = json.loads(json.dumps(config.to_dict()))
        assert ExperimentConfig.from_dict(wire) == config

    def test_config_round_trips_without_plan(self):
        config = ExperimentConfig()
        assert ExperimentConfig.from_dict(config.to_dict()) == config

    def test_plan_changes_cache_key(self):
        base = ExperimentConfig()
        faulted = ExperimentConfig(faults=FaultPlan.parse("burst@1ms"))
        assert config_key(base) != config_key(faulted)

    def test_distinct_plans_distinct_cache_keys(self):
        a = ExperimentConfig(faults=FaultPlan.parse("burst@1ms"))
        b = ExperimentConfig(faults=FaultPlan.parse("burst@2ms"))
        assert config_key(a) != config_key(b)
