"""Tests for the tracer, latency probe, wire, remote host, and topology."""

import pytest

from repro.bench.testbed import build_testbed
from repro.kernel.costs import CostModel
from repro.overlay.container import docker_mac_for
from repro.overlay.network import RemoteHost, Wire
from repro.overlay.topology import OverlayEndpoint, OverlayNetwork
from repro.packet.addr import Ipv4Address, MacAddress
from repro.packet.packet import Packet
from repro.packet.skb import SKBuff
from repro.sim import Simulator
from repro.stack.egress import build_udp_packet
from repro.trace.latency import KernelLatencyProbe
from repro.trace.tracer import TracePoint, Tracer


class TestTracer:
    def test_emit_without_subscribers_is_noop(self):
        tracer = Tracer()
        tracer.emit("nothing", x=1)  # must not raise

    def test_attach_and_emit(self):
        tracer = Tracer()
        got = []
        tracer.attach("point", lambda **kw: got.append(kw))
        tracer.emit("point", a=1, b="two")
        assert got == [{"a": 1, "b": "two"}]

    def test_multiple_subscribers(self):
        tracer = Tracer()
        got = []
        tracer.attach("p", lambda **kw: got.append("first"))
        tracer.attach("p", lambda **kw: got.append("second"))
        tracer.emit("p")
        assert got == ["first", "second"]

    def test_detach(self):
        tracer = Tracer()
        callback = tracer.attach("p", lambda **kw: None)
        assert tracer.detach("p", callback)
        assert not tracer.detach("p", callback)
        assert not tracer.has_subscribers("p")

    def test_detach_unknown_point(self):
        tracer = Tracer()
        assert not tracer.detach("nope", lambda: None)

    def test_subscriber_can_detach_during_emit(self):
        tracer = Tracer()
        got = []

        def once(**kw):
            got.append(1)
            tracer.detach("p", once)

        tracer.attach("p", once)
        tracer.emit("p")
        tracer.emit("p")
        assert got == [1]


class TestKernelLatencyProbe:
    def _emit(self, tracer, sim, socket_name="s", high=False, start=100):
        skb = SKBuff(Packet(headers=(), payload_len=1))
        skb.mark("rx_ring", start)
        if high:
            skb.classify(0)
        else:
            skb.classify(1)
        tracer.emit(TracePoint.SOCKET_ENQUEUE, socket=socket_name, skb=skb)

    def test_records_ring_to_socket_time(self):
        sim = Simulator()
        sim.run(until=500)
        tracer = Tracer()
        probe = KernelLatencyProbe(tracer, lambda: sim.now)
        self._emit(tracer, sim, start=100)
        assert probe.samples_ns == [400]

    def test_priority_filter(self):
        sim = Simulator()
        tracer = Tracer()
        probe = KernelLatencyProbe(tracer, lambda: sim.now,
                                   only_high_priority=True)
        self._emit(tracer, sim, high=False)
        self._emit(tracer, sim, high=True)
        assert len(probe) == 1

    def test_socket_filter(self):
        sim = Simulator()
        tracer = Tracer()
        probe = KernelLatencyProbe(tracer, lambda: sim.now, socket_name="a")
        self._emit(tracer, sim, socket_name="a")
        self._emit(tracer, sim, socket_name="b")
        assert len(probe) == 1

    def test_skb_without_mark_ignored(self):
        sim = Simulator()
        tracer = Tracer()
        probe = KernelLatencyProbe(tracer, lambda: sim.now)
        skb = SKBuff(Packet(headers=(), payload_len=1))
        tracer.emit(TracePoint.SOCKET_ENQUEUE, socket="s", skb=skb)
        assert len(probe) == 0

    def test_stop_and_clear(self):
        sim = Simulator()
        tracer = Tracer()
        probe = KernelLatencyProbe(tracer, lambda: sim.now)
        self._emit(tracer, sim)
        probe.clear()
        assert len(probe) == 0
        probe.stop()
        self._emit(tracer, sim)
        assert len(probe) == 0


class Endpoint:
    """Minimal wire endpoint for tests."""

    def __init__(self):
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


def make_packet(payload_len=100):
    return build_udp_packet(
        src_mac=MacAddress(1), dst_mac=MacAddress(2),
        src_ip=Ipv4Address("1.1.1.1"), dst_ip=Ipv4Address("2.2.2.2"),
        src_port=1, dst_port=2, payload=None, payload_len=payload_len)


class TestWire:
    def test_delivers_to_opposite_endpoint(self):
        sim = Simulator()
        wire = Wire(sim, CostModel())
        a, b = Endpoint(), Endpoint()
        wire.attach(a, b)
        wire.transmit(make_packet(), sender=a)
        sim.run()
        assert len(b.received) == 1
        assert not a.received

    def test_latency_plus_serialization(self):
        sim = Simulator()
        costs = CostModel()
        wire = Wire(sim, costs)
        a, b = Endpoint(), Endpoint()
        wire.attach(a, b)
        packet = make_packet()
        wire.transmit(packet, sender=a)
        sim.run()
        expected = costs.wire_time(packet.wire_len)
        assert sim.now == expected

    def test_back_to_back_serialization_spacing(self):
        sim = Simulator()
        costs = CostModel()
        wire = Wire(sim, costs)
        a, b = Endpoint(), Endpoint()
        wire.attach(a, b)
        arrivals = []
        b.receive = lambda p: arrivals.append(sim.now)
        packet = make_packet(payload_len=1_400)
        wire.transmit(packet, sender=a)
        wire.transmit(make_packet(payload_len=1_400), sender=a)
        sim.run()
        serialization = int(packet.wire_len / costs.wire_bytes_per_ns)
        assert arrivals[1] - arrivals[0] == serialization

    def test_directions_are_independent(self):
        sim = Simulator()
        wire = Wire(sim, CostModel())
        a, b = Endpoint(), Endpoint()
        wire.attach(a, b)
        wire.transmit(make_packet(), sender=a)
        wire.transmit(make_packet(), sender=b)
        sim.run()
        assert len(a.received) == 1 and len(b.received) == 1

    def test_unattached_sender_rejected(self):
        sim = Simulator()
        wire = Wire(sim, CostModel())
        wire.attach(Endpoint(), Endpoint())
        with pytest.raises(ValueError):
            wire.transmit(make_packet(), sender=Endpoint())

    def test_endpoint_without_receive_rejected(self):
        sim = Simulator()
        wire = Wire(sim, CostModel())
        with pytest.raises(TypeError):
            wire.attach(object(), Endpoint())


class TestRemoteHost:
    def _make(self):
        sim = Simulator()
        remote = RemoteHost(sim, CostModel(), ip=Ipv4Address("192.168.1.2"),
                            mac=MacAddress(9))
        return sim, remote

    def test_port_demux_with_client_overhead(self):
        sim, remote = self._make()
        got = []
        remote.on_port(2, lambda packet: got.append(sim.now))
        remote.receive(make_packet())
        sim.run()
        assert got == [CostModel().client_overhead_ns]

    def test_vxlan_packets_are_decapsulated_for_demux(self):
        from repro.stack.egress import EncapInfo, apply_encap
        sim, remote = self._make()
        got = []
        remote.on_port(2, lambda packet: got.append(packet))
        encap = EncapInfo(vni=1, outer_src_mac=MacAddress(3),
                          outer_dst_mac=MacAddress(4),
                          outer_src_ip=Ipv4Address("10.9.9.9"),
                          outer_dst_ip=Ipv4Address("10.9.9.8"))
        remote.receive(apply_encap(make_packet(), encap))
        sim.run()
        assert len(got) == 1
        assert not got[0].is_vxlan  # handler sees the inner packet

    def test_unhandled_counted(self):
        _sim, remote = self._make()
        remote.receive(make_packet())
        assert remote.unhandled == 1

    def test_duplicate_port_handler_rejected(self):
        _sim, remote = self._make()
        remote.on_port(2, lambda p: None)
        with pytest.raises(ValueError):
            remote.on_port(2, lambda p: None)


class TestOverlayTopology:
    def test_docker_mac_prefix(self):
        mac = docker_mac_for(Ipv4Address("10.0.0.2"))
        assert str(mac).startswith("02:42:")

    def test_endpoint_registry(self):
        overlay = OverlayNetwork(vni=7)
        endpoint = OverlayEndpoint(
            ip=Ipv4Address("10.0.0.2"), mac=MacAddress(5),
            host_ip=Ipv4Address("192.168.1.1"), host_mac=MacAddress(6))
        overlay.register(endpoint)
        assert overlay.endpoint(Ipv4Address("10.0.0.2")) is endpoint
        with pytest.raises(KeyError):
            overlay.endpoint(Ipv4Address("10.0.0.3"))

    def test_encap_info_targets_remote_host(self):
        testbed = build_testbed()
        testbed.add_server_container("srv", "10.0.0.10")
        remote = testbed.add_client_container("cli", "10.0.0.100")
        encap = testbed.server_overlay.encap_to("10.0.0.100")
        assert encap.vni == testbed.overlay.vni
        assert encap.outer_dst_ip == testbed.client.ip
        assert encap.outer_src_ip == testbed.server.ip
        del remote

    def test_container_bookkeeping(self):
        testbed = build_testbed()
        container = testbed.add_server_container("srv", "10.0.0.10")
        assert container.mac == docker_mac_for(container.ip)
        # Static FDB entry points at the veth host end.
        bridge = testbed.server_overlay.bridge
        assert bridge.fdb.lookup(container.mac) is container.veth.host_end
        # Veth container end lives in the container's namespace.
        assert container.veth.container_end.netns is container.netns

    def test_duplicate_container_name_rejected(self):
        testbed = build_testbed()
        testbed.add_server_container("srv", "10.0.0.10")
        with pytest.raises(ValueError):
            testbed.add_server_container("srv", "10.0.0.11")

    def test_send_helpers_require_overlay(self):
        from repro.overlay.container import Container
        testbed = build_testbed()
        orphan = Container(testbed.server, "orphan",
                           ip=Ipv4Address("10.0.0.50"))
        with pytest.raises(RuntimeError):
            next(orphan.send_udp(dst_ip="10.0.0.100", dst_port=1,
                                 src_port=2, payload=None, payload_len=1))
