"""The kernel-bypass (poll-mode driver) datapath.

BYPASS dedicates the packet core to a user-space busy-poll loop: no
hardirq, no softirq, no per-stage queues, and the core never idles.
These tests pin the mode's semantics: parsing, delivery without any
interrupt machinery, run-to-completion latency beating vanilla's,
determinism, exact conservation under faults, the build-time-only
restriction, and serialization neutrality of the new cost knobs.
"""

import dataclasses
import json

import pytest

from repro.bench.experiment import ExperimentConfig, run_experiment
from repro.bench.runner import result_digest
from repro.bench.testbed import build_testbed
from repro.faults.plan import FaultPlan
from repro.kernel.config import KernelConfig
from repro.kernel.costs import CostModel
from repro.kernel.cpu import CpuContext
from repro.prism.mode import StackMode
from repro.sim.units import MS
from repro.apps.remote import RemoteRequestSender


class TestStackModeParse:
    @pytest.mark.parametrize("text,expected", [
        ("bypass", StackMode.BYPASS),
        ("pmd", StackMode.BYPASS),
        ("busy-poll", StackMode.BYPASS),
        ("af-xdp", StackMode.BYPASS),
        ("AF_XDP", StackMode.BYPASS),
        ("sync", StackMode.PRISM_SYNC),
        ("prism", StackMode.PRISM_SYNC),
        ("batch", StackMode.PRISM_BATCH),
        ("vanilla", StackMode.VANILLA),
    ])
    def test_parse_values_and_aliases(self, text, expected):
        assert StackMode.parse(text) is expected

    def test_error_lists_values_and_aliases(self):
        with pytest.raises(ValueError) as exc:
            StackMode.parse("dpdk")
        message = str(exc.value)
        assert "'dpdk'" in message
        for value in ("vanilla", "prism-batch", "prism-sync", "bypass"):
            assert value in message
        for alias in ("pmd", "busy-poll", "af-xdp", "sync", "batch"):
            assert alias in message

    def test_predicates(self):
        assert StackMode.BYPASS.is_bypass
        assert not StackMode.BYPASS.is_prism
        assert not StackMode.VANILLA.is_bypass
        assert StackMode.PRISM_SYNC.is_prism


def _bypass_testbed():
    testbed = build_testbed(mode=StackMode.BYPASS)
    server = testbed.add_server_container("srv", "10.0.0.10")
    client = testbed.add_client_container("cli", "10.0.0.100")
    socket = server.udp_socket(5000, core_id=1)
    sender = RemoteRequestSender(testbed.client, testbed.overlay,
                                 client, "10.0.0.10")
    return testbed, socket, sender


class TestBypassDelivery:
    def test_burst_delivered_without_any_interrupt(self):
        testbed, socket, sender = _bypass_testbed()
        for _ in range(100):
            sender.send_udp(src_port=40000, dst_port=5000,
                            payload=None, payload_len=32)
        testbed.sim.run(until=20 * MS)
        assert socket.delivered == 100
        stats = testbed.server.kernel.cpu(0).stats
        assert stats.hardirqs == 0
        assert stats.ns[CpuContext.SOFTIRQ] == 0
        assert stats.softirq_invocations == 0

    def test_packet_core_never_idles(self):
        # The PMD spins in C0: no idle time, no C-state exits, ever.
        testbed, socket, sender = _bypass_testbed()
        for _ in range(10):
            sender.send_udp(src_port=40000, dst_port=5000,
                            payload=None, payload_len=32)
        testbed.sim.run(until=20 * MS)
        stats = testbed.server.kernel.cpu(0).stats
        assert stats.ns[CpuContext.IDLE] == 0
        assert stats.ns[CpuContext.CSTATE_EXIT] == 0
        assert stats.cstate_wakeups == 0

    def test_pmd_counters_account_every_packet(self):
        testbed, socket, sender = _bypass_testbed()
        for _ in range(50):
            sender.send_udp(src_port=40000, dst_port=5000,
                            payload=None, payload_len=32)
        testbed.sim.run(until=20 * MS)
        pmd = testbed.server.nic._pmd
        assert pmd is not None
        assert pmd.packets == 50
        assert 1 <= pmd.batches <= 50
        assert pmd.idle_spins >= 1

    def test_irq_machinery_stays_untouched(self):
        testbed, socket, sender = _bypass_testbed()
        sender.send_udp(src_port=40000, dst_port=5000,
                        payload=None, payload_len=32)
        testbed.sim.run(until=5 * MS)
        nic = testbed.server.nic
        assert nic.irq_enabled  # never masked
        assert nic._irq_timer is None


def _experiment(mode, **overrides):
    kwargs = dict(mode=mode, network="overlay", fg_rate_pps=1_000,
                  bg_rate_pps=300_000.0, duration_ns=10 * MS,
                  warmup_ns=2 * MS)
    kwargs.update(overrides)
    return ExperimentConfig(**kwargs)


class TestBypassExperiment:
    def test_bypass_beats_vanilla_p99(self):
        bypass = run_experiment(_experiment(StackMode.BYPASS))
        vanilla = run_experiment(_experiment(StackMode.VANILLA))
        assert bypass.fg_latency.p99_ns < vanilla.fg_latency.p99_ns
        assert bypass.fg_latency.p50_ns < vanilla.fg_latency.p50_ns
        assert bypass.cpu_utilization > 0.99  # the burned core
        assert bypass.softirq_fraction == 0.0

    def test_rerun_digest_identical(self):
        config = _experiment(StackMode.BYPASS)
        assert (result_digest(run_experiment(config))
                == result_digest(run_experiment(config)))

    @pytest.mark.parametrize("spec", [
        "loss:eth:0.05; retries=3; timeout=2ms",
        "loss:wire:0.03; flap@3ms+1ms!; retries=3; timeout=2ms",
    ])
    def test_conservation_exact_under_faults(self, spec):
        config = _experiment(StackMode.BYPASS, faults=FaultPlan.parse(spec))
        result = run_experiment(config)
        assert result.conservation["balanced"]


class TestBuildTimeOnly:
    def test_runtime_switch_out_of_bypass_rejected(self):
        testbed = build_testbed(mode=StackMode.BYPASS)
        with pytest.raises(ValueError, match="build time"):
            testbed.set_mode(StackMode.VANILLA)

    def test_runtime_switch_into_bypass_rejected(self):
        testbed = build_testbed(mode=StackMode.VANILLA)
        with pytest.raises(ValueError, match="build time"):
            testbed.set_mode(StackMode.BYPASS)

    def test_same_mode_is_a_no_op(self):
        testbed = build_testbed(mode=StackMode.BYPASS)
        testbed.set_mode(StackMode.BYPASS)
        assert testbed.server.kernel.mode is StackMode.BYPASS


class TestSerializationNeutrality:
    """New knobs must not change the wire format of default configs:
    cache keys and digests of every pre-existing experiment depend on
    that dict staying byte-identical."""

    NEW_COST_KEYS = ("bypass_stage_overhead_ns", "bypass_stage_cost_scale",
                     "irq_mod_epoch_ns", "irq_mod_min_ns", "irq_mod_max_ns",
                     "irq_mod_up_pps", "irq_mod_down_pps")

    def test_default_dict_omits_new_keys(self):
        wire = ExperimentConfig(costs=CostModel(),
                                kernel_config=KernelConfig()).to_dict()
        for key in self.NEW_COST_KEYS:
            assert key not in wire["costs"]
        assert "irq_moderation" not in wire["kernel_config"]

    def test_non_default_values_round_trip(self):
        config = ExperimentConfig(
            costs=CostModel().replace(bypass_stage_cost_scale=0.25,
                                      irq_mod_max_ns=90_000),
            kernel_config=KernelConfig(irq_moderation="adaptive"))
        wire = json.loads(json.dumps(config.to_dict()))
        restored = ExperimentConfig.from_dict(wire)
        assert restored == config
        assert restored.costs.bypass_stage_cost_scale == 0.25
        assert restored.kernel_config.irq_moderation == "adaptive"

    def test_bypass_discount_scales_only_the_base(self):
        costs = CostModel()
        assert costs.bypass_stage_base(700) == 350
        # Per-byte component charged in full on top of the scaled base.
        full = costs.stage_packet_cost(costs.bypass_stage_base(1_100),
                                       1_000, is_copy_stage=True)
        assert full == int(550 + costs.copy_per_byte_ns * 1_000)

    def test_other_modes_unaffected_by_discount(self):
        # The discount knob must not leak into non-bypass schedules:
        # the measurements (digested with the config normalized away)
        # are identical whatever the scale is set to.
        base = _experiment(StackMode.VANILLA)
        scaled = dataclasses.replace(
            base, costs=CostModel().replace(bypass_stage_cost_scale=0.1))
        r_base = run_experiment(base)
        r_scaled = run_experiment(scaled)
        assert (result_digest(dataclasses.replace(r_base, config=base))
                == result_digest(dataclasses.replace(r_scaled, config=base)))
