"""Unit tests for NapiStruct and SoftnetData (poll lists, dual queues)."""

import pytest

from repro.kernel.core import Kernel
from repro.kernel.softnet import NET_RX_SOFTIRQ, NapiStruct
from repro.netdev.device import PacketStage
from repro.packet.packet import Packet
from repro.packet.skb import SKBuff
from repro.sim import Simulator


class CountingStage(PacketStage):
    """A stage that charges a fixed cost and records processed skbs."""

    name = "test"

    def __init__(self, cost=100):
        self.cost = cost
        self.processed = []

    def process(self, skb, softnet):
        yield self.cost
        self.processed.append(skb)


def make_kernel():
    sim = Simulator()
    return sim, Kernel(sim, n_cpus=1)


def make_skb():
    return SKBuff(Packet(headers=(), payload_len=10))


class TestNapiStruct:
    def test_enqueue_low_and_high_separate(self):
        _sim, kernel = make_kernel()
        napi = NapiStruct("n", kernel, stage=CountingStage())
        napi.enqueue(make_skb(), high=False)
        napi.enqueue(make_skb(), high=True)
        assert len(napi.queue_low) == 1
        assert len(napi.queue_high) == 1
        assert napi.has_packets() and napi.has_high() and napi.has_low()

    def test_enqueue_overflow_drops_and_counts(self):
        _sim, kernel = make_kernel()
        napi = NapiStruct("n", kernel, stage=CountingStage(),
                          queue_capacity=2)
        assert napi.enqueue(make_skb(), high=False)
        assert napi.enqueue(make_skb(), high=False)
        assert not napi.enqueue(make_skb(), high=False)
        assert kernel.drops["n:low"] == 1

    def test_poll_prefers_high_queue_exclusively(self):
        sim, kernel = make_kernel()
        stage = CountingStage()
        napi = NapiStruct("n", kernel, stage=stage)
        napi.softnet = kernel.softnet_for(0)
        low = make_skb()
        high = make_skb()
        napi.enqueue(low, high=False)
        napi.enqueue(high, high=True)

        def driver():
            count = yield from napi.poll(batch_size=64)
            results.append(count)

        results = []
        sim.process(driver())
        sim.run()
        # Fig. 7: when the high queue is non-empty, ONLY it is drained.
        assert results == [1]
        assert stage.processed == [high]
        assert napi.has_low()

    def test_poll_batch_limit(self):
        sim, kernel = make_kernel()
        stage = CountingStage()
        napi = NapiStruct("n", kernel, stage=stage)
        napi.softnet = kernel.softnet_for(0)
        for _ in range(10):
            napi.enqueue(make_skb(), high=False)

        def driver():
            count = yield from napi.poll(batch_size=4)
            results.append(count)

        results = []
        sim.process(driver())
        sim.run()
        assert results == [4]
        assert len(napi.queue_low) == 6

    def test_poll_charges_device_overhead_and_stage_costs(self):
        sim, kernel = make_kernel()
        stage = CountingStage(cost=100)
        napi = NapiStruct("n", kernel, stage=stage)
        napi.softnet = kernel.softnet_for(0)
        for _ in range(3):
            napi.enqueue(make_skb(), high=False)

        def driver():
            yield from napi.poll(batch_size=64)

        start = sim.now
        sim.process(driver())
        sim.run()
        expected = kernel.costs.device_poll_overhead_ns + 3 * 100
        assert sim.now - start == expected

    def test_process_inline_runs_stage_without_queueing(self):
        sim, kernel = make_kernel()
        stage = CountingStage()
        napi = NapiStruct("n", kernel, stage=stage)
        napi.softnet = kernel.softnet_for(0)
        skb = make_skb()

        def driver():
            yield from napi.process_inline(skb)

        sim.process(driver())
        sim.run()
        assert stage.processed == [skb]
        assert not napi.has_packets()

    def test_backlog_dispatches_by_skb_device(self):
        sim, kernel = make_kernel()
        softnet = kernel.softnet_for(0)
        stage_a = CountingStage()
        stage_b = CountingStage()

        class Dev:
            def __init__(self, stage):
                self.rx_stage = stage

        skb_a = make_skb()
        skb_a.dev = Dev(stage_a)
        skb_b = make_skb()
        skb_b.dev = Dev(stage_b)
        softnet.backlog.enqueue(skb_a, high=False)
        softnet.backlog.enqueue(skb_b, high=False)

        def driver():
            yield from softnet.backlog.poll(batch_size=64)

        sim.process(driver())
        sim.run()
        assert stage_a.processed == [skb_a]
        assert stage_b.processed == [skb_b]

    def test_backlog_without_device_stage_raises(self):
        sim, kernel = make_kernel()
        softnet = kernel.softnet_for(0)
        skb = make_skb()  # no dev
        softnet.backlog.enqueue(skb, high=False)

        def driver():
            yield from softnet.backlog.poll(batch_size=64)

        sim.process(driver())
        with pytest.raises(RuntimeError):
            sim.run()


class TestSoftnetScheduling:
    def test_napi_schedule_appends_once(self):
        _sim, kernel = make_kernel()
        softnet = kernel.softnet_for(0)
        napi = NapiStruct("n", kernel, stage=CountingStage())
        softnet.napi_schedule(napi)
        softnet.napi_schedule(napi)
        assert list(softnet.poll_list) == [napi]
        assert napi.scheduled

    def test_napi_schedule_head_inserts_at_front(self):
        _sim, kernel = make_kernel()
        softnet = kernel.softnet_for(0)
        first = NapiStruct("a", kernel, stage=CountingStage())
        second = NapiStruct("b", kernel, stage=CountingStage())
        softnet.napi_schedule(first)
        softnet.napi_schedule_head(second)
        assert softnet.poll_list_names() == ["b", "a"]

    def test_napi_schedule_head_moves_queued_device(self):
        _sim, kernel = make_kernel()
        softnet = kernel.softnet_for(0)
        first = NapiStruct("a", kernel, stage=CountingStage())
        second = NapiStruct("b", kernel, stage=CountingStage())
        softnet.napi_schedule(first)
        softnet.napi_schedule(second)
        softnet.napi_schedule_head(second)
        assert softnet.poll_list_names() == ["b", "a"]

    def test_napi_schedule_head_leaves_in_flight_device_alone(self):
        _sim, kernel = make_kernel()
        softnet = kernel.softnet_for(0)
        napi = NapiStruct("a", kernel, stage=CountingStage())
        # Simulate "being polled": scheduled but not on the list.
        napi.scheduled = True
        softnet.napi_schedule_head(napi)
        assert softnet.poll_list_names() == []

    def test_napi_complete_clears_sched_and_calls_hook(self):
        _sim, kernel = make_kernel()
        softnet = kernel.softnet_for(0)
        napi = NapiStruct("a", kernel, stage=CountingStage())
        called = []
        napi.on_complete = lambda: called.append(True)
        softnet.napi_schedule(napi)
        softnet.poll_list.clear()
        softnet.napi_complete(napi)
        assert not napi.scheduled
        assert called == [True]

    def test_schedule_raises_net_rx_softirq(self):
        sim, kernel = make_kernel()
        softnet = kernel.softnet_for(0)
        napi = NapiStruct("a", kernel, stage=CountingStage())
        softnet.napi_schedule(napi)
        assert NET_RX_SOFTIRQ in kernel.cpu(0)._pending_softirqs
        sim.run()  # drains (empty poll run is fine)
