"""The Scenario fluent builder (`repro.scenario`).

The load-bearing contract: a Scenario is *sugar only*.  `build()` must
produce an ExperimentConfig equal (and hence cache-key identical) to one
constructed directly, and every fluent call returns a new Scenario,
leaving the receiver untouched.
"""

import pytest

from repro.bench.experiment import ExperimentConfig
from repro.bench.runner import config_key, result_digest
from repro.kernel.config import KernelConfig
from repro.prism.mode import StackMode
from repro.scenario import Scenario, run_scenarios
from repro.sim.units import MS

FAST = dict(duration_ns=30 * MS, warmup_ns=10 * MS)


class TestBuildEquivalence:
    def test_fluent_build_equals_direct_config(self):
        fluent = (Scenario(mode="prism-sync", network="overlay", seed=3)
                  .foreground("pingpong", rate_pps=2_000, payload_len=200)
                  .background(rate_pps=50_000, burst=16)
                  .timing(**FAST)
                  .build())
        direct = ExperimentConfig(mode=StackMode.PRISM_SYNC,
                                  network="overlay", seed=3,
                                  fg_kind="pingpong", fg_rate_pps=2_000.0,
                                  fg_payload_len=200,
                                  bg_rate_pps=50_000.0, bg_burst=16,
                                  **FAST)
        assert fluent == direct
        assert config_key(fluent) == config_key(direct)

    def test_defaults_match_config_defaults(self):
        assert Scenario().build() == ExperimentConfig()

    def test_mode_accepts_enum_and_string(self):
        assert (Scenario(mode=StackMode.PRISM_BATCH).build()
                == Scenario(mode="prism-batch").build())
        assert (Scenario().mode("prism-sync").build().mode
                is StackMode.PRISM_SYNC)

    def test_kernel_and_costs_overrides(self):
        config = (Scenario()
                  .kernel(napi_weight=16)
                  .costs(hardirq_ns=5_000)
                  .build())
        assert config.kernel_config.napi_weight == 16
        assert config.costs.hardirq_ns == 5_000

    def test_kernel_overrides_compose(self):
        config = (Scenario()
                  .kernel(napi_weight=16)
                  .kernel(gro_enabled=False)
                  .build())
        assert config.kernel_config.napi_weight == 16
        assert config.kernel_config.gro_enabled is False

    def test_seed_shorthand(self):
        assert Scenario().seed(9).build() == Scenario().timing(seed=9).build()


class TestImmutability:
    def test_fluent_calls_fork(self):
        base = Scenario().foreground("pingpong", rate_pps=1_000)
        loaded = base.background(rate_pps=300_000)
        assert base.build().bg_rate_pps == 0
        assert loaded.build().bg_rate_pps == 300_000.0

    def test_equality_and_hash_follow_config(self):
        a = Scenario(seed=2).background(rate_pps=1_000)
        b = Scenario(seed=2).background(rate_pps=1_000)
        assert a == b and hash(a) == hash(b)
        assert a != a.seed(3)


class TestValidation:
    def test_unknown_network_rejected(self):
        with pytest.raises(ValueError, match="network"):
            Scenario(network="bridge")

    def test_unknown_foreground_kind_rejected(self):
        with pytest.raises(ValueError, match="foreground kind"):
            Scenario().foreground("bulk")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            Scenario(mode="prism-turbo")

    def test_unknown_kernel_knob_rejected(self):
        with pytest.raises(TypeError):
            Scenario().kernel(napi_wieght=16)

    def test_unknown_cost_knob_rejected(self):
        with pytest.raises(TypeError):
            Scenario().costs(wakeup=1)


class TestExecution:
    def test_run_matches_run_experiment(self):
        from repro.bench.experiment import run_experiment

        scenario = (Scenario(seed=5)
                    .foreground("pingpong", rate_pps=2_000)
                    .timing(**FAST))
        assert (result_digest(scenario.run())
                == result_digest(run_experiment(scenario.build())))

    def test_run_scenarios_accepts_mixed_inputs(self):
        scenario = Scenario(seed=5).foreground(
            "pingpong", rate_pps=2_000).timing(**FAST)
        raw = scenario.build()
        results = run_scenarios([scenario, raw])
        assert [r.config for r in results] == [raw, raw]
        assert result_digest(results[0]) == result_digest(results[1])

    def test_label_delegates_to_config(self):
        scenario = Scenario(mode="prism-sync")
        assert scenario.label() == scenario.build().label()
