"""Tests for the Kernel facade, CostModel, and KernelConfig."""

import dataclasses

import pytest

from repro.kernel.config import KernelConfig
from repro.kernel.core import Kernel
from repro.kernel.costs import CostModel
from repro.packet.packet import Packet
from repro.packet.skb import SKBuff
from repro.prism.mode import StackMode
from repro.sim import Simulator


class TestCostModel:
    def test_defaults_are_calibrated_to_fig8(self):
        costs = CostModel()
        # The three-stage sum is the ~2.5us/packet saturation anchor.
        stage_sum = costs.nic_pkt_ns + costs.bridge_pkt_ns + costs.veth_pkt_ns
        assert 2_000 <= stage_sum <= 2_600

    def test_replace_returns_modified_copy(self):
        costs = CostModel()
        faster = costs.replace(nic_pkt_ns=100)
        assert faster.nic_pkt_ns == 100
        assert costs.nic_pkt_ns != 100

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            CostModel().nic_pkt_ns = 1  # type: ignore[misc]

    def test_stage_packet_cost_per_byte(self):
        costs = CostModel()
        small = costs.stage_packet_cost(1_000, 100)
        large = costs.stage_packet_cost(1_000, 10_000)
        assert large > small
        copy_stage = costs.stage_packet_cost(1_000, 10_000, is_copy_stage=True)
        assert copy_stage > large  # copies cost more per byte

    def test_egress_cost_grows_with_size(self):
        costs = CostModel()
        assert costs.egress_cost(64_000) > costs.egress_cost(64)

    def test_wire_time_latency_plus_serialization(self):
        costs = CostModel()
        assert costs.wire_time(0) == costs.wire_latency_ns
        big = costs.wire_time(125_000)
        assert big == costs.wire_latency_ns + int(125_000 / costs.wire_bytes_per_ns)

    def test_cstate_compat_accessors(self):
        costs = CostModel()
        assert costs.cstate_entry_threshold_ns == costs.cstate_levels[0][0]
        assert costs.cstate_exit_ns == costs.cstate_levels[0][1]
        empty = costs.replace(cstate_levels=())
        assert empty.cstate_entry_threshold_ns == 0
        assert empty.cstate_exit_ns == 0


class TestKernelConfig:
    def test_linux_defaults(self):
        config = KernelConfig()
        assert config.napi_weight == 64
        assert config.napi_budget == 300
        assert config.backlog_capacity == 1_000

    def test_replace(self):
        config = KernelConfig().replace(napi_weight=8)
        assert config.napi_weight == 8


class TestKernel:
    def _make(self, **kwargs):
        sim = Simulator()
        return Kernel(sim, **kwargs)

    def test_requires_cpu(self):
        with pytest.raises(ValueError):
            self._make(n_cpus=0)

    def test_initial_mode_from_config(self):
        kernel = self._make(config=KernelConfig(
            initial_mode=StackMode.PRISM_SYNC))
        assert kernel.mode is StackMode.PRISM_SYNC

    def test_set_mode(self):
        kernel = self._make()
        kernel.set_mode(StackMode.PRISM_BATCH)
        assert kernel.mode is StackMode.PRISM_BATCH

    def test_procfs_round_trip(self):
        kernel = self._make()
        kernel.procfs.write("/proc/prism/mode", "sync")
        assert kernel.mode is StackMode.PRISM_SYNC
        assert kernel.procfs.read("/proc/prism/mode") == "prism-sync"

    def test_is_high_class_binary(self):
        kernel = self._make()
        skb = SKBuff(Packet(headers=(), payload_len=1))
        assert not kernel.is_high_class(skb)  # unclassified
        skb.classify(0)
        assert kernel.is_high_class(skb)
        skb.classify(1)
        assert not kernel.is_high_class(skb)

    def test_is_high_class_multilevel(self):
        kernel = self._make(config=KernelConfig(high_priority_max_level=1))
        skb = SKBuff(Packet(headers=(), payload_len=1))
        skb.classify(1)
        assert kernel.is_high_class(skb)
        skb.classify(2)
        assert not kernel.is_high_class(skb)

    def test_drop_accounting(self):
        kernel = self._make()
        kernel.count_drop("q")
        kernel.count_drop("q")
        kernel.count_drop("r")
        assert kernel.drops == {"q": 2, "r": 1}
        assert kernel.total_drops == 3

    def test_per_cpu_softnets(self):
        kernel = self._make(n_cpus=3)
        assert len(kernel.softnets) == 3
        assert kernel.softnet_for(2).cpu is kernel.cpu(2)

    def test_repr(self):
        assert "vanilla" in repr(self._make())
