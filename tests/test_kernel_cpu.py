"""Unit tests for the CPU core model: contexts, preemption, C-states."""

import pytest

from repro.kernel.costs import CostModel
from repro.kernel.cpu import Block, CpuContext, CpuCore, CpuStats, Work
from repro.sim import Simulator
from repro.sim.units import MS, US


NO_CSTATES = CostModel().replace(cstate_levels=())


def make_core(costs=None, core_id=0):
    sim = Simulator()
    core = CpuCore(sim, core_id, costs or NO_CSTATES)
    return sim, core


class TestWorkAndBlock:
    def test_work_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Work(-1)

    def test_work_repr(self):
        assert repr(Work(100)) == "Work(100)"


class TestUserThreads:
    def test_thread_work_consumes_time(self):
        sim, core = make_core()
        log = []

        def thread():
            yield Work(5_000)
            log.append(sim.now)

        core.spawn(thread())
        sim.run()
        assert log == [5_000]
        assert core.stats.ns[CpuContext.USER] == 5_000

    def test_bare_int_yield_treated_as_work(self):
        sim, core = make_core()
        log = []

        def thread():
            yield 3_000
            log.append(sim.now)

        core.spawn(thread())
        sim.run()
        assert log == [3_000]

    def test_two_threads_serialize_on_one_core(self):
        sim, core = make_core()
        log = []

        def thread(name):
            yield Work(1_000)
            log.append((sim.now, name))

        core.spawn(thread("a"))
        core.spawn(thread("b"))
        sim.run()
        # One core: total busy time is the sum, not the max.
        assert log == [(1_000, "a"), (2_000, "b")]

    def test_round_robin_with_cooperative_yield(self):
        sim, core = make_core()
        log = []

        def thread(name):
            for _ in range(2):
                yield Work(100)
                log.append(name)
                yield None

        core.spawn(thread("a"))
        core.spawn(thread("b"))
        sim.run()
        assert log == ["a", "b", "a", "b"]

    def test_blocked_thread_releases_core(self):
        sim, core = make_core()
        event = sim.event()
        log = []

        def waiter():
            value = yield Block(event)
            log.append((sim.now, value))

        def worker():
            yield Work(2_000)
            log.append((sim.now, "worked"))

        core.spawn(waiter())
        core.spawn(worker())
        sim.schedule(10_000, lambda: event.succeed("data"))
        sim.run()
        assert log == [(2_000, "worked"), (10_000, "data")]

    def test_thread_done_event_carries_return_value(self):
        sim, core = make_core()

        def thread():
            yield Work(100)
            return 42

        handle = core.spawn(thread())
        sim.run()
        assert not handle.alive
        assert handle.done_event.value == 42

    def test_bad_yield_type_raises(self):
        sim, core = make_core()

        def thread():
            yield "garbage"

        core.spawn(thread())
        with pytest.raises(TypeError):
            sim.run()


class TestSoftirqPriority:
    def test_softirq_runs_before_threads(self):
        sim, core = make_core()
        log = []

        def handler():
            log.append("softirq")
            yield 1_000

        def thread():
            yield Work(1_000)
            log.append("user")

        core.register_softirq(3, handler)
        core.spawn(thread())
        core.raise_softirq(3)
        sim.run()
        assert log == ["softirq", "user"]

    def test_softirq_preempts_thread_between_work_items(self):
        sim, core = make_core()
        log = []

        def handler():
            log.append(("softirq", sim.now))
            yield 500

        def thread():
            yield Work(1_000)
            log.append(("work1", sim.now))
            yield Work(1_000)
            log.append(("work2", sim.now))

        core.register_softirq(3, handler)
        core.spawn(thread())
        sim.schedule(500, lambda: core.raise_softirq(3))
        sim.run()
        # The softirq raised at t=500 does NOT interrupt the running work
        # item; it runs right after it completes (t=1000), and the thread
        # resumes afterwards (t=1500) before its second work item.
        assert log == [("softirq", 1_000), ("work1", 1_500), ("work2", 2_500)]

    def test_raise_unregistered_softirq_raises(self):
        _sim, core = make_core()
        with pytest.raises(KeyError):
            core.raise_softirq(99)

    def test_softirq_raise_is_idempotent(self):
        sim, core = make_core()
        runs = []

        def handler():
            runs.append(sim.now)
            yield 100

        core.register_softirq(3, handler)
        core.raise_softirq(3)
        core.raise_softirq(3)
        sim.run()
        assert len(runs) == 1

    def test_softirq_reraise_during_handler_runs_again(self):
        sim, core = make_core()
        runs = []

        def handler():
            runs.append(sim.now)
            if len(runs) < 3:
                core.raise_softirq(3)
            yield 100

        core.register_softirq(3, handler)
        core.raise_softirq(3)
        sim.run()
        assert len(runs) == 3

    def test_softirq_time_accounted_as_softirq(self):
        sim, core = make_core()

        def handler():
            yield 2_000

        core.register_softirq(3, handler)
        core.raise_softirq(3)
        sim.run()
        assert core.stats.ns[CpuContext.SOFTIRQ] == 2_000
        assert core.stats.softirq_invocations == 1

    @pytest.mark.parametrize("fairness,expected_finish", [
        # With ksoftirqd fairness the thread's 500ns slice runs between
        # the two softirq rounds: round1 (0-1000), slice (1000-1500),
        # round2 (1500-2500), thread resumes and finishes at 2500.
        (True, 2_500),
        # Without fairness both rounds run back-to-back first:
        # rounds (0-2000), slice (2000-2500), finish at 2500... the
        # difference shows in when the USER time was consumed (below).
        (False, 2_500),
    ])
    def test_ksoftirqd_yield_lets_thread_run(self, fairness, expected_finish):
        sim = Simulator()
        core = CpuCore(sim, 0, NO_CSTATES, ksoftirqd_fairness=fairness)
        rounds = []

        def handler():
            rounds.append(sim.now)
            yield 1_000
            if len(rounds) < 2:
                core.raise_softirq(3)
                core.request_softirq_yield()

        def thread():
            yield Work(500)

        core.register_softirq(3, handler)
        handle = core.spawn(thread())
        core.raise_softirq(3)
        sim.run()
        assert len(rounds) == 2
        if fairness:
            # Thread slice ran between rounds: round 2 starts at 1500.
            assert rounds == [0, 1_500]
        else:
            # Rounds back-to-back; thread only ran afterwards.
            assert rounds == [0, 1_000]
        assert not handle.alive


class TestHardirq:
    def test_hardirq_accounted_and_handler_runs(self):
        sim, core = make_core()
        fired = []
        core.hardirq(lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0]
        assert core.stats.hardirqs == 1
        assert core.stats.ns[CpuContext.HARDIRQ] == NO_CSTATES.hardirq_ns


class TestCStates:
    def test_long_idle_pays_exit_latency(self):
        costs = CostModel().replace(cstate_levels=((20 * US, 3 * US),))
        sim, core = make_core(costs)
        log = []

        def thread():
            yield Work(100)
            log.append(sim.now)

        # Spawn the thread after a long idle period.
        sim.schedule(1 * MS, lambda: core.spawn(thread()))
        sim.run()
        assert core.stats.cstate_wakeups == 1
        assert log == [1 * MS + 3 * US + 100]

    def test_short_idle_has_no_penalty(self):
        costs = CostModel().replace(cstate_levels=((20 * US, 3 * US),))
        sim, core = make_core(costs)
        log = []

        def thread():
            yield Work(100)
            log.append(sim.now)

        sim.schedule(5 * US, lambda: core.spawn(thread()))
        sim.run()
        assert core.stats.cstate_wakeups == 0
        assert log == [5 * US + 100]

    def test_deep_state_engages_after_longer_idle(self):
        costs = CostModel().replace(
            cstate_levels=((20 * US, 3 * US), (150 * US, 16 * US)))
        sim, core = make_core(costs)
        log = []

        def thread():
            yield Work(100)
            log.append(sim.now)

        sim.schedule(1 * MS, lambda: core.spawn(thread()))
        sim.run()
        assert log == [1 * MS + 16 * US + 100]

    def test_idle_time_accounted(self):
        sim, core = make_core()

        def thread():
            yield Work(100)

        sim.schedule(50_000, lambda: core.spawn(thread()))
        sim.run()
        assert core.stats.ns[CpuContext.IDLE] == 50_000


class TestCpuStats:
    def test_utilization_between_snapshots(self):
        sim, core = make_core()

        def thread():
            yield Work(30_000)

        before = core.stats.snapshot()
        core.spawn(thread())
        sim.run(until=100_000)
        after = core.stats.snapshot()
        util = CpuStats.utilization(before, after, 100_000)
        assert util == pytest.approx(0.3)

    def test_utilization_zero_elapsed(self):
        stats = CpuStats()
        snap = stats.snapshot()
        assert CpuStats.utilization(snap, snap, 0) == 0.0

    def test_busy_ns_excludes_idle(self):
        stats = CpuStats()
        stats.add(CpuContext.IDLE, 1_000)
        stats.add(CpuContext.USER, 500)
        stats.add(CpuContext.SOFTIRQ, 300)
        assert stats.busy_ns == 800
