"""Tests for the device drivers: NIC (irq/moderation/rings), bridge,
veth, vxlan gro_cells, and the GRO engine."""

import pytest

from repro.bench.testbed import build_testbed
from repro.kernel.config import KernelConfig
from repro.kernel.core import Kernel
from repro.kernel.gro import GroEngine
from repro.netdev.bridge import Bridge
from repro.netdev.queues import PacketQueue
from repro.packet.addr import Ipv4Address, MacAddress
from repro.packet.skb import SKBuff
from repro.prism.mode import StackMode
from repro.sim import Simulator
from repro.sim.units import MS, US
from repro.stack.egress import build_tcp_segments, build_udp_packet
from repro.stack.tcp import TcpMessage
from repro.apps.remote import RemoteRequestSender

MAC_A = MacAddress(0x10)
MAC_B = MacAddress(0x20)
MAC_C = MacAddress(0x30)


def plain_packet(payload_len=64, dport=7000):
    return build_udp_packet(
        src_mac=MAC_A, dst_mac=MAC_B,
        src_ip=Ipv4Address("192.168.1.2"), dst_ip=Ipv4Address("192.168.1.1"),
        src_port=30001, dst_port=dport, payload=None, payload_len=payload_len)


class TestNicInterrupts:
    def test_first_packet_raises_irq_immediately(self):
        testbed = build_testbed()
        testbed.server.udp_socket(7000, core_id=1)
        testbed.server.nic.receive(plain_packet())
        assert testbed.server.kernel.cpu(0).stats.hardirqs == 1
        assert not testbed.server.nic.irq_enabled

    def test_irq_masked_while_scheduled(self):
        testbed = build_testbed()
        testbed.server.udp_socket(7000, core_id=1)
        testbed.server.nic.receive(plain_packet())
        testbed.server.nic.receive(plain_packet())
        # Second packet must not raise a second interrupt.
        assert testbed.server.kernel.cpu(0).stats.hardirqs == 1

    def test_irq_rearmed_after_napi_complete(self):
        testbed = build_testbed()
        testbed.server.udp_socket(7000, core_id=1)
        testbed.server.nic.receive(plain_packet())
        testbed.sim.run(until=1 * MS)
        assert testbed.server.nic.irq_enabled
        # Well past the moderation window: next packet interrupts again.
        testbed.server.nic.receive(plain_packet())
        assert testbed.server.kernel.cpu(0).stats.hardirqs == 2

    def test_interrupt_moderation_defers_within_window(self):
        testbed = build_testbed()
        testbed.server.udp_socket(7000, core_id=1)
        window = testbed.server.kernel.costs.irq_rate_limit_ns
        testbed.server.nic.receive(plain_packet())
        testbed.sim.run(until=window // 4)  # processed, napi complete
        assert testbed.server.nic.irq_enabled
        hardirqs_before = testbed.server.kernel.cpu(0).stats.hardirqs
        testbed.server.nic.receive(plain_packet())
        # Within the window: no immediate irq, a timer is armed instead.
        assert testbed.server.kernel.cpu(0).stats.hardirqs == hardirqs_before
        testbed.sim.run(until=2 * window)
        assert testbed.server.kernel.cpu(0).stats.hardirqs == hardirqs_before + 1

    def test_ring_overflow_drops(self):
        testbed = build_testbed()
        capacity = testbed.server.kernel.config.rx_ring_capacity
        # No socket; just flood the ring without running the sim.
        for _ in range(capacity + 10):
            testbed.server.nic.receive(plain_packet())
        drops = testbed.server.kernel.drops
        assert drops.get("eth:ring") == 10


class TestNicPriorityRings:
    def test_hardware_steers_high_priority_flow(self):
        testbed = build_testbed(
            config=KernelConfig(nic_priority_rings=True),
            mode=StackMode.PRISM_SYNC)
        testbed.mark_high_priority("192.168.1.1", 7000)
        testbed.server.nic.receive(plain_packet(dport=7000))
        testbed.server.nic.receive(plain_packet(dport=9999))
        assert len(testbed.server.nic.ring_high) == 1
        assert len(testbed.server.nic.ring) == 1

    def test_high_ring_polled_first(self):
        testbed = build_testbed(
            config=KernelConfig(nic_priority_rings=True),
            mode=StackMode.PRISM_SYNC)
        testbed.mark_high_priority("192.168.1.1", 7000)
        high_sock = testbed.server.udp_socket(7000, core_id=1)
        low_sock = testbed.server.udp_socket(9999, core_id=1)
        # Enqueue low first, then high; high must be delivered first.
        testbed.server.nic.receive(plain_packet(dport=9999))
        testbed.server.nic.receive(plain_packet(dport=7000))
        testbed.sim.run(until=1 * MS)
        high_skb = high_sock.try_recv()
        low_skb = low_sock.try_recv()
        assert high_skb.marks["socket_enqueue"] < low_skb.marks["socket_enqueue"]


class TestBridge:
    def _make(self):
        sim = Simulator()
        kernel = Kernel(sim, n_cpus=1)
        return Bridge(kernel, "br0")

    class Port:
        def __init__(self, name):
            self.name = name
            self.peer = object()

    def _skb(self, src=MAC_A, dst=MAC_B):
        packet = build_udp_packet(
            src_mac=src, dst_mac=dst,
            src_ip=Ipv4Address("10.0.0.1"), dst_ip=Ipv4Address("10.0.0.2"),
            src_port=1, dst_port=2, payload=None, payload_len=10)
        return SKBuff(packet)

    def test_forward_to_known_mac(self):
        bridge = self._make()
        ingress = self.Port("in")
        egress = self.Port("out")
        bridge.fdb.learn(MAC_B, egress)
        assert bridge.forward(self._skb(), ingress) is egress
        assert bridge.forwarded == 1

    def test_forward_learns_source(self):
        bridge = self._make()
        ingress = self.Port("in")
        bridge.fdb.learn(MAC_B, self.Port("out"))
        bridge.forward(self._skb(src=MAC_C), ingress)
        assert bridge.fdb.lookup(MAC_C) is ingress

    def test_unknown_destination_dropped_and_counted(self):
        bridge = self._make()
        assert bridge.forward(self._skb(), self.Port("in")) is None
        assert bridge.flood_drops == 1

    def test_hairpin_to_ingress_rejected(self):
        bridge = self._make()
        port = self.Port("in")
        bridge.fdb.learn(MAC_B, port)
        assert bridge.forward(self._skb(), port) is None

    def test_add_port_idempotent(self):
        bridge = self._make()
        port = self.Port("p")
        bridge.add_port(port)
        bridge.add_port(port)
        assert bridge.ports == [port]


class TestGroEngine:
    def _make(self, **config):
        sim = Simulator()
        kernel = Kernel(sim, n_cpus=1,
                        config=KernelConfig(**config) if config else None)
        return kernel, GroEngine(kernel)

    def _tcp_skbs(self, n=2, dport=80, sport=30001, mss=1_000):
        message = TcpMessage(payload="m", length=mss * n)
        segments = build_tcp_segments(
            src_mac=MAC_A, dst_mac=MAC_B,
            src_ip=Ipv4Address("10.0.0.1"), dst_ip=Ipv4Address("10.0.0.2"),
            src_port=sport, dst_port=dport, message=message, mss=mss)
        return [SKBuff(segment) for segment in segments]

    def test_merge_same_flow_tcp(self):
        _kernel, gro = self._make()
        a, b = self._tcp_skbs(2)
        assert gro.can_merge(a, b)
        gro.merge(a, b)
        assert a.gro_segments == 2
        assert a.payload_bytes_merged == b.wire_len
        assert b.packet in a.gro_list

    def test_no_merge_across_flows(self):
        _kernel, gro = self._make()
        a = self._tcp_skbs(1, sport=30001)[0]
        b = self._tcp_skbs(1, sport=30002)[0]
        assert not gro.can_merge(a, b)

    def test_no_merge_udp(self):
        _kernel, gro = self._make()
        udp = SKBuff(plain_packet())
        other = SKBuff(plain_packet())
        assert not gro.can_merge(udp, other)

    def test_no_merge_past_byte_limit(self):
        kernel, gro = self._make(gro_max_bytes=2_500)
        a, b, c = self._tcp_skbs(3)
        assert gro.can_merge(a, b)
        gro.merge(a, b)
        assert not gro.can_merge(a, c)

    def test_no_merge_past_segment_limit(self):
        kernel, gro = self._make(gro_max_segs=2)
        a, b, c = self._tcp_skbs(3)
        gro.merge(a, b)
        assert not gro.can_merge(a, c)

    def test_no_merge_across_priorities(self):
        _kernel, gro = self._make()
        a, b = self._tcp_skbs(2)
        a.classify(0)
        b.classify(1)
        assert not gro.can_merge(a, b)

    def test_try_merge_into_queue(self):
        _kernel, gro = self._make()
        queue = PacketQueue(10, "q")
        a, b = self._tcp_skbs(2)
        queue.enqueue(a)
        assert gro.try_merge_into_queue(queue, b)
        assert len(queue) == 1
        assert gro.merged_segments == 1

    def test_try_merge_empty_queue_fails(self):
        _kernel, gro = self._make()
        queue = PacketQueue(10, "q")
        (a,) = self._tcp_skbs(1)
        assert not gro.try_merge_into_queue(queue, a)

    def test_try_merge_disabled_by_config(self):
        _kernel, gro = self._make(gro_enabled=False)
        queue = PacketQueue(10, "q")
        a, b = self._tcp_skbs(2)
        queue.enqueue(a)
        assert not gro.try_merge_into_queue(queue, b)


class TestGroEndToEnd:
    def test_overlay_tcp_coalesced_at_gro_cells(self):
        testbed = build_testbed()
        server = testbed.add_server_container("srv", "10.0.0.10")
        client = testbed.add_client_container("cli", "10.0.0.100")
        endpoint = server.tcp_endpoint(80, core_id=1)
        sender = RemoteRequestSender(testbed.client, testbed.overlay,
                                     client, "10.0.0.10")
        message = TcpMessage(payload="big", length=20_000)
        sender.send_tcp_message(src_port=30001, dst_port=80, message=message)
        testbed.sim.run(until=5 * MS)
        # All 14 segments arrived; GRO merged some of them, so the vxlan
        # device saw every wire packet but the backlog saw fewer skbs.
        vxlan = testbed.server_overlay.vxlan
        assert vxlan.rx_packets == 14
        assert vxlan.gro.merged_segments > 0
        assert endpoint.messages_delivered == 1


class TestRps:
    def test_steering_distributes_and_delivers(self):
        testbed = build_testbed(n_cpus=4)
        testbed.server.kernel.enable_rps([0, 1, 2, 3])
        socket = testbed.server.udp_socket(7000, core_id=1)
        # Many flows -> several CPUs see work.
        for sport in range(30001, 30033):
            packet = build_udp_packet(
                src_mac=MAC_A, dst_mac=MAC_B,
                src_ip=Ipv4Address("192.168.1.2"),
                dst_ip=Ipv4Address("192.168.1.1"),
                src_port=sport, dst_port=7000, payload=None, payload_len=32)
            testbed.server.nic.receive(packet)
        testbed.sim.run(until=5 * MS)
        assert socket.delivered == 32
        assert testbed.server.kernel.rps.steered > 0
        busy_cpus = sum(
            1 for cpu in testbed.server.kernel.cpus if cpu.stats.busy_ns > 0)
        assert busy_cpus >= 2

    def test_rps_requires_valid_cpus(self):
        testbed = build_testbed(n_cpus=2)
        with pytest.raises(ValueError):
            testbed.server.kernel.enable_rps([0, 5])
        with pytest.raises(ValueError):
            testbed.server.kernel.enable_rps([])

    def test_same_flow_stays_on_one_cpu(self):
        testbed = build_testbed(n_cpus=4)
        testbed.server.kernel.enable_rps([1, 2, 3])
        socket = testbed.server.udp_socket(7000, core_id=1)
        for _ in range(20):
            testbed.server.nic.receive(plain_packet())
        testbed.sim.run(until=5 * MS)
        assert socket.delivered == 20
        # Exactly one of the RPS target CPUs did the protocol work.
        from repro.kernel.cpu import CpuContext
        softirq_cpus = [cpu.core_id for cpu in testbed.server.kernel.cpus[1:]
                        if cpu.stats.ns[CpuContext.SOFTIRQ] > 0]
        assert len(softirq_cpus) == 1
