"""Property-based tests on whole-system invariants.

These drive randomized workloads through the full pipeline and check
conservation and determinism properties that must hold for *any*
workload, in every stack mode.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.remote import RemoteRequestSender
from repro.apps.sockperf import SockperfUdpClient, SockperfUdpServer
from repro.bench.testbed import build_testbed
from repro.prism.mode import StackMode
from repro.sim.units import MS

MODES = st.sampled_from(list(StackMode))


@st.composite
def burst_plan(draw):
    """A random plan of (port_index, count) bursts across two flows."""
    n_bursts = draw(st.integers(1, 6))
    return [(draw(st.integers(0, 1)), draw(st.integers(1, 80)))
            for _ in range(n_bursts)]


def run_plan(mode, plan, mark_high):
    testbed = build_testbed(mode=mode)
    sockets = []
    senders = []
    for index, (ip, cip, port) in enumerate(
            (("10.0.0.10", "10.0.0.100", 5000),
             ("10.0.0.11", "10.0.0.101", 6000))):
        server = testbed.add_server_container(f"s{index}", ip)
        client = testbed.add_client_container(f"c{index}", cip)
        sockets.append(server.udp_socket(port, core_id=1))
        senders.append(RemoteRequestSender(testbed.client, testbed.overlay,
                                           client, ip))
    if mark_high:
        testbed.mark_high_priority("10.0.0.10", 5000)
    sent = [0, 0]
    for flow, count in plan:
        port = 5000 if flow == 0 else 6000
        for _ in range(count):
            senders[flow].send_udp(src_port=40000 + flow, dst_port=port,
                                   payload=None, payload_len=32)
            sent[flow] += 1
    testbed.sim.run(until=50 * MS)
    return testbed, sockets, sent


class TestConservation:
    @settings(max_examples=15, deadline=None)
    @given(MODES, burst_plan(), st.booleans())
    def test_every_packet_delivered_or_dropped(self, mode, plan, mark_high):
        testbed, sockets, sent = run_plan(mode, plan, mark_high)
        delivered = [socket.delivered for socket in sockets]
        dropped = testbed.total_drops if hasattr(testbed, "total_drops") else (
            testbed.server.kernel.total_drops)
        assert sum(delivered) + dropped == sum(sent)

    @settings(max_examples=10, deadline=None)
    @given(MODES, burst_plan())
    def test_no_drops_below_ring_capacity(self, mode, plan):
        # Total bursts are < ring capacity, so nothing may be lost.
        testbed, sockets, sent = run_plan(mode, plan, mark_high=True)
        assert testbed.server.kernel.total_drops == 0
        assert sum(s.delivered for s in sockets) == sum(sent)

    @settings(max_examples=10, deadline=None)
    @given(MODES, burst_plan(), st.booleans())
    def test_fifo_within_each_flow(self, mode, plan, mark_high):
        """Packets of one flow are never reordered, in any mode —
        PRISM reorders *between* priority classes, never within one."""
        testbed, sockets, _sent = run_plan(mode, plan, mark_high)
        for socket in sockets:
            ids = [skb.packet.packet_id for skb in list(socket.rcvbuf._items)]
            assert ids == sorted(ids)


class TestDeterminism:
    def _run_once(self, seed):
        testbed = build_testbed(mode=StackMode.PRISM_BATCH, seed=seed)
        server = testbed.add_server_container("srv", "10.0.0.10")
        client = testbed.add_client_container("cli", "10.0.0.100")
        SockperfUdpServer(server, 5000, core_id=1)
        ping = SockperfUdpClient(
            testbed.sim, testbed.client, testbed.overlay, client,
            "10.0.0.10", 5000, rate_pps=5_000, src_port=30001)
        testbed.mark_high_priority("10.0.0.10", 5000)
        testbed.sim.run(until=30 * MS)
        return list(ping.recorder.samples_ns)

    def test_identical_seeds_identical_traces(self):
        assert self._run_once(3) == self._run_once(3)

    @settings(max_examples=5, deadline=None)
    @given(MODES, burst_plan(), st.booleans())
    def test_replay_property(self, mode, plan, mark_high):
        """The full final state is reproducible for any workload."""
        def snapshot():
            testbed, sockets, sent = run_plan(mode, plan, mark_high)
            return ([socket.delivered for socket in sockets],
                    dict(testbed.server.kernel.drops),
                    testbed.server.kernel.cpu(0).stats.busy_ns)
        assert snapshot() == snapshot()


class TestPriorityInvariants:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(10, 120))
    def test_high_flow_in_kernel_latency_never_worse_than_low(self, n_low):
        """With equal arrival positions, the marked flow's packets are
        delivered no later than the unmarked flow's in PRISM modes."""
        testbed = build_testbed(mode=StackMode.PRISM_BATCH)
        high_server = testbed.add_server_container("hi", "10.0.0.10")
        low_server = testbed.add_server_container("lo", "10.0.0.11")
        high_client = testbed.add_client_container("hic", "10.0.0.100")
        low_client = testbed.add_client_container("loc", "10.0.0.101")
        high_sock = high_server.udp_socket(5000, core_id=1)
        low_sock = low_server.udp_socket(6000, core_id=1)
        testbed.mark_high_priority("10.0.0.10", 5000)
        high_sender = RemoteRequestSender(testbed.client, testbed.overlay,
                                          high_client, "10.0.0.10")
        low_sender = RemoteRequestSender(testbed.client, testbed.overlay,
                                         low_client, "10.0.0.11")
        # Interleave perfectly: low, high, low, high, ...
        for _ in range(n_low):
            low_sender.send_udp(src_port=40001, dst_port=6000,
                                payload=None, payload_len=32)
            high_sender.send_udp(src_port=40000, dst_port=5000,
                                 payload=None, payload_len=32)
        testbed.sim.run(until=50 * MS)
        assert high_sock.delivered == n_low
        assert low_sock.delivered == n_low
        high_last = max(skb.marks["socket_enqueue"]
                        for skb in list(high_sock.rcvbuf._items))
        low_first_batch = [skb.marks["socket_enqueue"]
                           for skb in list(low_sock.rcvbuf._items)]
        # The last high packet lands no later than the last low packet.
        assert high_last <= max(low_first_batch)
