"""The Fig. 4 per-stage breakdown and its golden invariants.

Two contracts are pinned here:

1. **Telescoping identity** — the segment means sum to the mean
   end-to-end kernel latency exactly (the decomposition is lossless).
2. **Observer neutrality** — attaching the observability layer must not
   perturb the simulation: the traced run's measurements are
   digest-identical to an untraced run of the same config.
"""

import dataclasses

import pytest

from repro.bench.experiment import run_experiment
from repro.bench.runner import result_digest
from repro.obs.breakdown import StageBreakdown, StageSegment
from repro.obs.observer import PacketMilestones

from tests.conftest import TRACED_CONFIG


def _packet(skb_id, ring_at, alloc_at, stages, socket_at):
    p = PacketMilestones(skb_id, high_priority=False)
    p.ring_at = ring_at
    p.alloc_at = alloc_at
    p.stages = list(stages)
    p.socket_at = socket_at
    return p


class TestSyntheticBreakdown:
    def test_known_segments(self):
        packets = [
            _packet(1, 0, 10, [("eth", 30), ("br", 60)], 100),
            _packet(2, 100, 120, [("eth", 150), ("br", 200)], 220),
        ]
        b = StageBreakdown.from_packets(packets)
        assert b.path == ("eth", "br")
        assert b.packets == 2 and b.excluded == 0
        by_name = {s.name: s.mean_ns for s in b.segments}
        # Packet 1: ring 10, eth 20, br 30, socket 40.
        # Packet 2: ring 20, eth 30, br 50, socket 20.
        assert by_name == {"ring": 15.0, "eth": 25.0, "br": 40.0,
                           "socket": 30.0}
        assert b.end_to_end_ns == 110.0

    def test_off_path_packets_excluded(self):
        packets = [
            _packet(1, 0, 5, [("eth", 10)], 20),
            _packet(2, 0, 5, [("eth", 10)], 20),
            _packet(3, 0, 5, [("eth", 10), ("br", 15)], 20),  # off-modal
        ]
        b = StageBreakdown.from_packets(packets)
        assert b.path == ("eth",)
        assert b.packets == 2 and b.excluded == 1

    def test_incomplete_packets_ignored(self):
        unfinished = _packet(1, 0, 5, [("eth", 10)], 20)
        unfinished.socket_at = None
        b = StageBreakdown.from_packets([unfinished])
        assert b.packets == 0 and b.segments == ()
        assert b.render() == "(no completed packets)"

    def test_ring_segment_needs_alloc_on_every_packet(self):
        packets = [
            _packet(1, 0, None, [("eth", 10)], 20),
            _packet(2, 0, 5, [("eth", 10)], 20),
        ]
        b = StageBreakdown.from_packets(packets)
        assert [s.name for s in b.segments] == ["eth", "socket"]

    def test_round_trip_dict(self):
        b = StageBreakdown.from_packets(
            [_packet(1, 0, 10, [("eth", 30)], 100)])
        assert StageBreakdown.from_dict(b.to_dict()) == b


class TestGoldenIdentity:
    def test_segment_means_sum_to_end_to_end(self, traced_small):
        """The telescoping invariant on a real traced run."""
        b = traced_small.breakdown
        assert b.packets > 0
        total = sum(s.mean_ns for s in b.segments)
        assert total == pytest.approx(b.end_to_end_ns, rel=1e-12)
        assert sum(s.share for s in b.segments) == pytest.approx(1.0,
                                                                 rel=1e-12)

    def test_overlay_modal_path(self, traced_small):
        """Overlay receive path crosses driver, gro_cells, and veth
        backlog stages (the paper's Fig. 4 pipeline)."""
        assert traced_small.breakdown.path == ("eth", "br", "veth")
        assert [s.name for s in traced_small.breakdown.segments] == \
            ["ring", "eth", "br", "veth", "socket"]

    def test_breakdown_attached_to_result(self, traced_small):
        from repro.obs.breakdown import StageBreakdown as SB
        stored = traced_small.result.stage_breakdown
        assert stored is not None
        assert SB.from_dict(stored) == traced_small.breakdown


class TestObserverNeutrality:
    def test_traced_run_digest_matches_untraced(self, traced_small):
        """Attaching spans/gauges must not change simulation outcomes."""
        plain = run_experiment(TRACED_CONFIG)
        stripped = dataclasses.replace(traced_small.result,
                                       stage_breakdown=None)
        assert result_digest(stripped) == result_digest(plain)
