"""Tests for header dataclasses, checksums, and flow keys."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.packet import (
    EthernetHeader,
    FlowKey,
    IPPROTO_TCP,
    IPPROTO_UDP,
    IPv4Header,
    Ipv4Address,
    MacAddress,
    TcpHeader,
    UdpHeader,
    VxlanHeader,
    internet_checksum,
    rss_hash,
    verify_checksum,
)
from repro.packet.headers import TCP_FLAG_ACK, TCP_FLAG_SYN


MAC_A = MacAddress("02:42:ac:11:00:02")
MAC_B = MacAddress("02:42:ac:11:00:03")
IP_A = Ipv4Address("10.0.0.1")
IP_B = Ipv4Address("10.0.0.2")


class TestHeaderLengths:
    def test_wire_lengths_match_standards(self):
        assert EthernetHeader(MAC_A, MAC_B).length == 14
        assert IPv4Header(IP_A, IP_B, IPPROTO_UDP).length == 20
        assert UdpHeader(1, 2).length == 8
        assert TcpHeader(1, 2).length == 20
        assert VxlanHeader(1).length == 8

    def test_serialized_length_matches_declared(self):
        headers = [
            EthernetHeader(MAC_A, MAC_B),
            IPv4Header(IP_A, IP_B, IPPROTO_UDP),
            UdpHeader(1000, 2000, payload_length=100),
            TcpHeader(1000, 2000, seq=5),
            VxlanHeader(42),
        ]
        for header in headers:
            assert len(header.to_bytes()) == header.length


class TestIPv4Header:
    def test_ttl_decrement(self):
        header = IPv4Header(IP_A, IP_B, IPPROTO_UDP, ttl=2)
        assert header.decrement_ttl().ttl == 1

    def test_ttl_zero_raises(self):
        header = IPv4Header(IP_A, IP_B, IPPROTO_UDP, ttl=0)
        with pytest.raises(ValueError):
            header.decrement_ttl()

    def test_serialization_embeds_valid_checksum(self):
        header = IPv4Header(IP_A, IP_B, IPPROTO_UDP, total_length=120)
        assert verify_checksum(header.to_bytes())

    def test_checksum_differs_for_different_headers(self):
        a = IPv4Header(IP_A, IP_B, IPPROTO_UDP).to_bytes()
        b = IPv4Header(IP_A, IP_B, IPPROTO_TCP).to_bytes()
        assert a != b


class TestUdpHeader:
    def test_total_length_includes_header(self):
        assert UdpHeader(1, 2, payload_length=100).total_length == 108


class TestTcpHeader:
    def test_flag_predicates(self):
        syn = TcpHeader(1, 2, flags=TCP_FLAG_SYN)
        ack = TcpHeader(1, 2, flags=TCP_FLAG_ACK)
        assert syn.is_syn and not syn.is_fin
        assert not ack.is_syn


class TestVxlanHeader:
    def test_vni_bounds(self):
        VxlanHeader(0)
        VxlanHeader((1 << 24) - 1)
        with pytest.raises(ValueError):
            VxlanHeader(1 << 24)
        with pytest.raises(ValueError):
            VxlanHeader(-1)

    def test_vni_in_wire_format(self):
        raw = VxlanHeader(0xABCDEF).to_bytes()
        assert raw[4:7] == b"\xab\xcd\xef"


class TestChecksum:
    def test_known_rfc1071_value(self):
        # Example block from RFC 1071 §3.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0xFFFF - 0xDDF2

    def test_odd_length_padding(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_verify_detects_corruption(self):
        header = IPv4Header(IP_A, IP_B, IPPROTO_UDP).to_bytes()
        corrupted = bytes([header[0] ^ 0xFF]) + header[1:]
        assert verify_checksum(header)
        assert not verify_checksum(corrupted)

    @given(st.binary(min_size=0, max_size=64))
    def test_checksum_of_block_with_checksum_verifies(self, data):
        checksum = internet_checksum(data)
        padded = data if len(data) % 2 == 0 else data + b"\x00"
        assert verify_checksum(padded + checksum.to_bytes(2, "big"))


class TestFlowKey:
    def _key(self):
        return FlowKey(IP_A, IP_B, 1111, 2222, IPPROTO_UDP)

    def test_reversed_swaps_endpoints(self):
        key = self._key()
        rev = key.reversed()
        assert rev.src_ip == key.dst_ip
        assert rev.dst_port == key.src_port
        assert rev.reversed() == key

    def test_str_is_informative(self):
        assert "udp:10.0.0.1:1111->10.0.0.2:2222" == str(self._key())

    def test_hashable(self):
        assert {self._key(): 1}[self._key()] == 1

    def test_rss_hash_deterministic(self):
        assert rss_hash(self._key()) == rss_hash(self._key())

    def test_rss_hash_direction_sensitive(self):
        key = self._key()
        assert rss_hash(key) != rss_hash(key.reversed())

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1),
           st.integers(0, 65535), st.integers(0, 65535))
    def test_rss_hash_in_range(self, src, dst, sport, dport):
        key = FlowKey(Ipv4Address(src), Ipv4Address(dst), sport, dport, IPPROTO_UDP)
        assert 0 <= rss_hash(key) < 2**32
