"""Flow export's two determinism contracts, pinned end to end.

1. **Off ⇒ invisible.**  With ``flow_export=None`` (the default) the
   config wire format carries no ``flow_export`` key, so every
   pre-existing digest and disk-cache key is byte-identical to a build
   without the flows package; and with export *on*, the simulation
   outcome (digests, measurements) is still byte-identical — sampling
   observes, it never perturbs.

2. **On ⇒ shard-count independent.**  The merged record set (order-
   normalized, pinned by ``flows["record_digest"]``) is identical at
   shards 1/2/4, for in-process vs subprocess workers, and lands
   byte-identically through the JSONL and SQLite sinks.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.bench.experiment import ExperimentConfig, run_experiment
from repro.bench.runner import result_digest
from repro.flows import FlowExportConfig, export_flows, flow_record_digest
from repro.flows.query import load_records
from repro.prism.mode import StackMode
from repro.shard import ClusterConfig, cluster_digest, run_cluster
from repro.sim.units import MS

#: Short timeouts so idle/active expiry and the final flush all fire
#: inside a small test window.
FLOWS = FlowExportConfig(sample_rate=4, max_flows=256,
                         active_timeout_ns=4 * MS, idle_timeout_ns=1 * MS)


def _cluster(**overrides) -> ClusterConfig:
    knobs = dict(hosts=4, users=200, duration_ns=8 * MS, warmup_ns=2 * MS,
                 timeout_ns=5 * MS, flow_export=FLOWS)
    knobs.update(overrides)
    return ClusterConfig(**knobs)


def _fat_tree(**overrides) -> ClusterConfig:
    from repro.fabric.spec import Topology

    spec = Topology.fat_tree(4, hosts=4)
    return _cluster(topology=spec, **overrides)


# ----------------------------------------------------------------------
# Contract 1: export off/on never changes the simulation
# ----------------------------------------------------------------------
def test_export_off_omits_config_key():
    assert "flow_export" not in _cluster(flow_export=None).to_dict()
    assert "flow_export" not in ExperimentConfig().to_dict()
    # ... and absent keys round-trip back to None.
    assert ClusterConfig.from_dict(
        _cluster(flow_export=None).to_dict()).flow_export is None


def test_export_off_result_omits_flows():
    result = run_cluster(_cluster(flow_export=None), shards=1)
    assert result.flows is None
    assert "flows" not in result.to_dict()


def test_cluster_digest_identical_with_export_on():
    off = run_cluster(_cluster(flow_export=None), shards=1)
    on = run_cluster(_cluster(), shards=1)
    # Config differs (the flow_export key), so compare everything else.
    payload_off = off.digest_payload()
    payload_on = on.digest_payload()
    payload_off.pop("config")
    payload_on.pop("config")
    assert json.dumps(payload_off, sort_keys=True) == \
        json.dumps(payload_on, sort_keys=True)


def test_experiment_digest_identical_with_export_on():
    config = ExperimentConfig(mode=StackMode.VANILLA, bg_rate_pps=120_000.0,
                              duration_ns=8 * MS, warmup_ns=2 * MS)
    off = run_experiment(config)
    on = run_experiment(dataclasses.replace(config, flow_export=FLOWS))
    assert result_digest(off) == result_digest(
        dataclasses.replace(on, config=config, flows=None))
    assert on.flows["record_count"] > 0


def test_golden_digest_unchanged_by_flows_machinery():
    """The pinned fastpath golden still holds — the always-on parts of
    the flows wiring (attribute checks on the packet path) are free."""
    from tests.test_fastpath_golden import GOLD

    config, untraced, _ = GOLD["overlay-vanilla"]
    assert result_digest(run_experiment(config)) == untraced


# ----------------------------------------------------------------------
# Contract 2: record set independent of execution shape
# ----------------------------------------------------------------------
def test_records_identical_across_shard_counts():
    digests = {
        shards: run_cluster(_cluster(), shards=shards,
                            processes=False).flows["record_digest"]
        for shards in (1, 2, 4)}
    assert len(set(digests.values())) == 1, digests


def test_records_identical_subprocess_vs_in_process():
    config = _cluster()
    in_proc = run_cluster(config, shards=2, processes=False)
    sub_proc = run_cluster(config, shards=2, processes=True)
    assert in_proc.flows["record_digest"] == \
        sub_proc.flows["record_digest"]
    assert in_proc.flows["records"] == sub_proc.flows["records"]


def test_fat_tree_records_identical_and_cover_links():
    config = _fat_tree()
    one = run_cluster(config, shards=1)
    two = run_cluster(config, shards=2, processes=False)
    assert cluster_digest(one) == cluster_digest(two)
    assert one.flows["record_digest"] == two.flows["record_digest"]
    assert "fabric" in one.flows["scopes"]
    link_sites = {site
                  for record in one.flows["records"]
                  for site in record["sites"] if site.startswith("link:")}
    assert link_sites, "fabric collector produced no link sites"


def test_records_reproducible_and_seed_sensitive():
    base = run_cluster(_cluster(), shards=1)
    again = run_cluster(_cluster(), shards=1)
    other = run_cluster(_cluster(seed=7), shards=1)
    assert base.flows["record_digest"] == again.flows["record_digest"]
    assert base.flows["record_digest"] != other.flows["record_digest"]


def test_expiry_reasons_exercised():
    flows = run_cluster(_cluster(), shards=1).flows
    reasons = {record["reason"] for record in flows["records"]}
    assert "idle" in reasons or "active" in reasons, reasons
    assert flows["cache"]["folded"] == flows["sampler"]["sampled"]


def test_sink_backends_byte_identical(tmp_path):
    flows = run_cluster(_cluster(), shards=1).flows
    export_flows(flows, tmp_path / "run.jsonl")
    export_flows(flows, tmp_path / "run.sqlite")
    jsonl = load_records(tmp_path / "run.jsonl")
    sqlite = load_records(tmp_path / "run.sqlite")
    assert flow_record_digest(jsonl) == flows["record_digest"]
    assert flow_record_digest(sqlite) == flows["record_digest"]


def test_result_to_dict_carries_summary_not_records():
    result = run_cluster(_cluster(), shards=1)
    block = result.to_dict()["flows"]
    assert "records" not in block
    assert block["record_digest"] == result.flows["record_digest"]
    assert block["record_count"] == len(result.flows["records"])
