"""Shared fixtures for the test suite."""

import pytest

from repro.bench.experiment import ExperimentConfig, run_traced_experiment
from repro.prism.mode import StackMode
from repro.sim.units import MS

#: Short measurement window shared by the observability tests — long
#: enough to exercise every tracepoint, short enough to stay cheap.
TRACED_CONFIG = ExperimentConfig(mode=StackMode.VANILLA, fg_rate_pps=2_000,
                                 bg_rate_pps=50_000, duration_ns=30 * MS,
                                 warmup_ns=10 * MS)


@pytest.fixture(scope="session")
def traced_small():
    """One traced run of the canonical small scenario, shared across the
    observability test modules (the run itself is deterministic)."""
    return run_traced_experiment(TRACED_CONFIG)
