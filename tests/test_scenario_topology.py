"""Scenario.on / Topology adapters: canonicalization and cache keys."""

import warnings

import pytest

from repro.bench.experiment import ExperimentConfig
from repro.bench.runner import config_key
from repro.fabric.spec import Topology
from repro.scenario import ClusterScenario, Scenario


class TestTwoHostAdapter:
    def test_cache_key_identical_to_legacy_overlay(self):
        legacy = Scenario(network="overlay").build()
        via_spec = Scenario.on(Topology.two_host()).build()
        assert via_spec == legacy
        assert config_key(via_spec) == config_key(legacy)

    def test_cache_key_identical_to_legacy_host(self):
        legacy = Scenario(network="host").build()
        via_spec = Scenario.on(Topology.two_host("host")).build()
        assert config_key(via_spec) == config_key(legacy)

    def test_custom_link_maps_onto_the_cost_model(self):
        spec = Topology.two_host(latency_ns=5_000, bytes_per_ns=25.0)
        config = Scenario.on(spec).build()
        assert config.topology is None  # canonicalized, not carried
        assert config.costs.wire_latency_ns == 5_000
        assert config.costs.wire_bytes_per_ns == 25.0

    def test_mode_and_seed_forward(self):
        config = Scenario.on(Topology.two_host(), mode="prism-sync",
                             seed=9).build()
        assert config.mode.value == "prism-sync"
        assert config.seed == 9

    def test_cluster_knobs_rejected(self):
        with pytest.raises(TypeError, match="no cluster knobs"):
            Scenario.on(Topology.two_host(), users=100)


class TestPositionalNetworkDeprecation:
    def test_warns_and_builds_the_same_config(self):
        with pytest.deprecated_call():
            old = Scenario("vanilla", "host")
        assert old.build() == Scenario(network="host").build()
        assert config_key(old.build()) == config_key(
            Scenario(network="host").build())

    def test_keyword_form_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            Scenario(network="overlay")
            Scenario.on(Topology.two_host())

    def test_conflicting_forms_rejected(self):
        with pytest.raises(TypeError, match="positionally and by keyword"):
            Scenario("vanilla", "host", network="overlay")
        with pytest.raises(TypeError, match="positional"):
            Scenario("vanilla", "host", "extra")


class TestClusterDispatch:
    def test_fat_tree_spec_becomes_a_cluster_scenario(self):
        spec = Topology.fat_tree(4, hosts=8)
        scenario = Scenario.on(spec, users=500)
        assert isinstance(scenario, ClusterScenario)
        config = scenario.build()
        assert config.hosts == 8
        assert config.topology == spec
        assert config.users == 500

    def test_mesh_spec_canonicalizes_to_the_legacy_fabric(self):
        scenario = Scenario.on(Topology.mesh(4, latency_ns=60_000))
        config = scenario.build()
        assert config.topology is None
        assert config.fabric_latency_ns == 60_000
        legacy = ClusterScenario(4, fabric_latency_ns=60_000).build()
        assert config == legacy

    def test_heterogeneous_mesh_rejected(self):
        spec = Topology.mesh(3)
        links = list(spec.links)
        links[0] = links[0].__class__(links[0].a, links[0].b,
                                      latency_ns=1, bytes_per_ns=12.5)
        uneven = spec.__class__(kind=spec.kind, hosts=spec.hosts,
                                links=tuple(links))
        with pytest.raises(ValueError, match="heterogeneous"):
            Scenario.on(uneven)

    def test_topology_method_follows_the_spec_host_count(self):
        spec = Topology.fat_tree(4, hosts=8)
        scenario = Scenario.cluster(4).topology(spec)
        assert scenario.build().hosts == 8
        assert scenario.topology(None).build().topology is None


class TestExperimentConfigSerde:
    def test_topology_absent_when_none(self):
        assert "topology" not in ExperimentConfig().to_dict()

    def test_round_trip_with_topology(self):
        config = ExperimentConfig(topology=Topology.two_host())
        data = config.to_dict()
        assert data["topology"]["kind"] == "two-host"
        assert ExperimentConfig.from_dict(data) == config

    def test_topology_spec_defaults_to_the_network_string(self):
        assert (ExperimentConfig(network="host").topology_spec()
                == Topology.two_host("host"))
        explicit = Topology.two_host(latency_ns=9_000)
        assert (ExperimentConfig(topology=explicit).topology_spec()
                is explicit)


class TestClusterCli:
    def test_shards_exceeding_hosts_is_an_upfront_error(self, capsys):
        from repro.__main__ import main
        with pytest.raises(SystemExit) as exc:
            main(["--cluster", "4", "--shards", "8"])
        assert exc.value.code == 2
        assert "exceeds --cluster" in capsys.readouterr().err

    def test_zero_shards_rejected(self, capsys):
        from repro.__main__ import main
        with pytest.raises(SystemExit):
            main(["--cluster", "4", "--shards", "0"])
        assert "--shards must be >= 1" in capsys.readouterr().err
