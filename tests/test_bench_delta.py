"""bench_delta.py must degrade gracefully, never traceback.

The CI delta step runs on every PR; a missing/empty/zero baseline (fresh
branch, first bench run, renamed workload) has to produce a warning and
exit 0 — a traceback would fail the job for reasons unrelated to the
change under test.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_delta",
    Path(__file__).resolve().parents[1] / ".github" / "bench_delta.py")
bench_delta = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_delta)


def write_bench(tmp_path, name, runs):
    path = tmp_path / name
    path.write_text(json.dumps({"schema": 1, "runs": runs}))
    return str(path)


def run_entry(pps, label="seed"):
    return {
        "label": label,
        "quick": False,
        "timestamp": "2026-01-01T00:00:00",
        "canonical": "overlay_vanilla_bg300k",
        "canonical_packets_per_sec": pps,
        "workloads": {
            "overlay_vanilla_bg300k": {"packets_per_sec": pps,
                                       "seconds": 1.0},
        },
    }


class TestGracefulSkips:
    def test_missing_baseline_file_warns_and_exits_zero(self, tmp_path,
                                                        capsys):
        current = write_bench(tmp_path, "cur.json", [run_entry(100.0)])
        rc = bench_delta.main([str(tmp_path / "absent.json"), current,
                               "--gate", "20"])
        assert rc == 0
        assert "not found — comparison skipped" in capsys.readouterr().out

    def test_missing_current_file_warns_and_exits_zero(self, tmp_path,
                                                       capsys):
        baseline = write_bench(tmp_path, "base.json", [run_entry(100.0)])
        rc = bench_delta.main([baseline, str(tmp_path / "absent.json")])
        assert rc == 0
        assert "comparison skipped" in capsys.readouterr().out

    def test_empty_runs_list_warns_and_exits_zero(self, tmp_path, capsys):
        baseline = write_bench(tmp_path, "base.json", [])
        current = write_bench(tmp_path, "cur.json", [run_entry(100.0)])
        rc = bench_delta.main([baseline, current, "--gate", "20"])
        assert rc == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_invalid_json_warns_and_exits_zero(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{oops")
        current = write_bench(tmp_path, "cur.json", [run_entry(100.0)])
        rc = bench_delta.main([str(bad), current])
        assert rc == 0
        assert "not valid JSON" in capsys.readouterr().out

    def test_unknown_metric_warns_and_exits_zero(self, tmp_path, capsys):
        runs = [{"workloads": {"w": {"weird_unit": 1}}}]
        baseline = write_bench(tmp_path, "base.json", runs)
        current = write_bench(tmp_path, "cur.json", runs)
        rc = bench_delta.main([baseline, current])
        assert rc == 0
        assert "no known throughput metric" in capsys.readouterr().out

    def test_zero_baseline_headline_skips_gate(self, tmp_path, capsys):
        baseline = write_bench(tmp_path, "base.json", [run_entry(0.0)])
        current = write_bench(tmp_path, "cur.json", [run_entry(100.0)])
        rc = bench_delta.main([baseline, current, "--gate", "20"])
        assert rc == 0
        assert "baseline headline is zero — skipped" in \
            capsys.readouterr().out

    def test_missing_headline_skips_gate(self, tmp_path, capsys):
        entry = run_entry(100.0)
        del entry["canonical_packets_per_sec"]
        baseline = write_bench(tmp_path, "base.json", [entry])
        current = write_bench(tmp_path, "cur.json", [run_entry(100.0)])
        rc = bench_delta.main([baseline, current, "--gate", "20"])
        assert rc == 0
        assert "missing — skipped" in capsys.readouterr().out


class TestGate:
    def test_within_budget_passes(self, tmp_path):
        baseline = write_bench(tmp_path, "base.json", [run_entry(100.0)])
        current = write_bench(tmp_path, "cur.json", [run_entry(90.0)])
        assert bench_delta.main([baseline, current, "--gate", "20"]) == 0

    def test_regression_past_budget_fails(self, tmp_path, capsys):
        baseline = write_bench(tmp_path, "base.json", [run_entry(100.0)])
        current = write_bench(tmp_path, "cur.json", [run_entry(70.0)])
        assert bench_delta.main([baseline, current, "--gate", "20"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_improvement_passes(self, tmp_path):
        baseline = write_bench(tmp_path, "base.json", [run_entry(100.0)])
        current = write_bench(tmp_path, "cur.json", [run_entry(200.0)])
        assert bench_delta.main([baseline, current, "--gate", "20"]) == 0

    def test_without_gate_output_is_informational(self, tmp_path, capsys):
        baseline = write_bench(tmp_path, "base.json", [run_entry(100.0)])
        current = write_bench(tmp_path, "cur.json", [run_entry(1.0)])
        assert bench_delta.main([baseline, current]) == 0
        out = capsys.readouterr().out
        assert "| overlay_vanilla_bg300k |" in out

    def test_latest_run_is_compared(self, tmp_path):
        baseline = write_bench(tmp_path, "base.json",
                               [run_entry(1.0), run_entry(100.0)])
        current = write_bench(tmp_path, "cur.json", [run_entry(95.0)])
        assert bench_delta.main([baseline, current, "--gate", "20"]) == 0


def run_entry_sampled(samples, label="seed"):
    """A run that recorded repeated-run samples (statistical gate path)."""
    entry = run_entry(max(samples), label=label)
    entry["canonical_packets_per_sec_samples"] = list(samples)
    return entry


class TestStatisticalGate:
    """PASTRAMI-lite: gate on median + IQR overlap, not a single number."""

    def test_distinguishable_regression_fails(self, tmp_path, capsys):
        baseline = write_bench(tmp_path, "base.json", [run_entry_sampled(
            [100.0, 101.0, 102.0, 103.0, 104.0])])
        current = write_bench(tmp_path, "cur.json", [run_entry_sampled(
            [60.0, 61.0, 62.0, 63.0, 64.0])])
        assert bench_delta.main([baseline, current, "--gate", "20"]) == 1
        assert "statistically distinguishable" in capsys.readouterr().out

    def test_noisy_regression_with_iqr_overlap_passes(self, tmp_path,
                                                      capsys):
        # Median drops 25% (past the 20% budget) but the spreads overlap:
        # the single-number gate would fail this; the statistical one
        # recognizes it as noise.
        baseline = write_bench(tmp_path, "base.json", [run_entry_sampled(
            [70.0, 95.0, 100.0, 105.0, 130.0])])
        current = write_bench(tmp_path, "cur.json", [run_entry_sampled(
            [60.0, 70.0, 75.0, 96.0, 99.0])])
        assert bench_delta.main([baseline, current, "--gate", "20"]) == 0
        assert "IQRs overlap" in capsys.readouterr().out

    def test_small_median_drop_passes(self, tmp_path):
        baseline = write_bench(tmp_path, "base.json", [run_entry_sampled(
            [100.0, 101.0, 102.0])])
        current = write_bench(tmp_path, "cur.json", [run_entry_sampled(
            [90.0, 91.0, 92.0])])
        assert bench_delta.main([baseline, current, "--gate", "20"]) == 0

    def test_too_few_samples_falls_back_to_single_run_gate(self, tmp_path,
                                                           capsys):
        # Two samples each: not enough for quartiles — the legacy
        # single-number path must decide (and fail, 30% drop).
        baseline = write_bench(tmp_path, "base.json", [run_entry_sampled(
            [100.0, 102.0])])
        current = write_bench(tmp_path, "cur.json", [run_entry_sampled(
            [70.0, 71.0])])
        assert bench_delta.main([baseline, current, "--gate", "20"]) == 1
        out = capsys.readouterr().out
        assert "statistical" not in out
        assert "FAIL" in out

    def test_legacy_runs_without_samples_unaffected(self, tmp_path):
        baseline = write_bench(tmp_path, "base.json", [run_entry(100.0)])
        current = write_bench(tmp_path, "cur.json", [run_entry(95.0)])
        assert bench_delta.main([baseline, current, "--gate", "20"]) == 0

    def test_quartiles_interpolate(self):
        q1, med, q3 = bench_delta.quartiles([1.0, 2.0, 3.0, 4.0])
        assert med == 2.5
        assert q1 == 1.75
        assert q3 == 3.25


def test_check_artifacts_detects_patterns_and_size(tmp_path):
    """The artifact-hygiene checker flags tracked traces and huge files."""
    spec = importlib.util.spec_from_file_location(
        "check_artifacts",
        Path(__file__).resolve().parents[1] / ".github" /
        "check_artifacts.py")
    check_artifacts = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(check_artifacts)

    import subprocess
    subprocess.run(["git", "init", "-q", str(tmp_path)], check=True)
    (tmp_path / "ok.py").write_text("x = 1\n")
    (tmp_path / "bad.trace.json").write_text("{}")
    (tmp_path / "huge.txt").write_text("a" * 2048)
    subprocess.run(["git", "-C", str(tmp_path), "add", "-A"], check=True)

    problems = check_artifacts.check(root=str(tmp_path), max_bytes=1024)
    assert any("bad.trace.json" in p and "artifact pattern" in p
               for p in problems)
    assert any("huge.txt" in p and "exceeds" in p for p in problems)
    assert not any("ok.py" in p for p in problems)
