"""bench_delta.py must degrade gracefully, never traceback.

The CI delta step runs on every PR; a missing/empty/zero baseline (fresh
branch, first bench run, renamed workload) has to produce a warning and
exit 0 — a traceback would fail the job for reasons unrelated to the
change under test.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_delta",
    Path(__file__).resolve().parents[1] / ".github" / "bench_delta.py")
bench_delta = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(bench_delta)


def write_bench(tmp_path, name, runs):
    path = tmp_path / name
    path.write_text(json.dumps({"schema": 1, "runs": runs}))
    return str(path)


def run_entry(pps, label="seed"):
    return {
        "label": label,
        "quick": False,
        "timestamp": "2026-01-01T00:00:00",
        "canonical": "overlay_vanilla_bg300k",
        "canonical_packets_per_sec": pps,
        "workloads": {
            "overlay_vanilla_bg300k": {"packets_per_sec": pps,
                                       "seconds": 1.0},
        },
    }


class TestGracefulSkips:
    def test_missing_baseline_file_warns_and_exits_zero(self, tmp_path,
                                                        capsys):
        current = write_bench(tmp_path, "cur.json", [run_entry(100.0)])
        rc = bench_delta.main([str(tmp_path / "absent.json"), current,
                               "--gate", "20"])
        assert rc == 0
        assert "not found — comparison skipped" in capsys.readouterr().out

    def test_missing_current_file_warns_and_exits_zero(self, tmp_path,
                                                       capsys):
        baseline = write_bench(tmp_path, "base.json", [run_entry(100.0)])
        rc = bench_delta.main([baseline, str(tmp_path / "absent.json")])
        assert rc == 0
        assert "comparison skipped" in capsys.readouterr().out

    def test_empty_runs_list_warns_and_exits_zero(self, tmp_path, capsys):
        baseline = write_bench(tmp_path, "base.json", [])
        current = write_bench(tmp_path, "cur.json", [run_entry(100.0)])
        rc = bench_delta.main([baseline, current, "--gate", "20"])
        assert rc == 0
        assert "no runs recorded" in capsys.readouterr().out

    def test_invalid_json_warns_and_exits_zero(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{oops")
        current = write_bench(tmp_path, "cur.json", [run_entry(100.0)])
        rc = bench_delta.main([str(bad), current])
        assert rc == 0
        assert "not valid JSON" in capsys.readouterr().out

    def test_unknown_metric_warns_and_exits_zero(self, tmp_path, capsys):
        runs = [{"workloads": {"w": {"weird_unit": 1}}}]
        baseline = write_bench(tmp_path, "base.json", runs)
        current = write_bench(tmp_path, "cur.json", runs)
        rc = bench_delta.main([baseline, current])
        assert rc == 0
        assert "no known throughput metric" in capsys.readouterr().out

    def test_zero_baseline_headline_skips_gate(self, tmp_path, capsys):
        baseline = write_bench(tmp_path, "base.json", [run_entry(0.0)])
        current = write_bench(tmp_path, "cur.json", [run_entry(100.0)])
        rc = bench_delta.main([baseline, current, "--gate", "20"])
        assert rc == 0
        assert "baseline headline is zero — skipped" in \
            capsys.readouterr().out

    def test_missing_headline_skips_gate(self, tmp_path, capsys):
        entry = run_entry(100.0)
        del entry["canonical_packets_per_sec"]
        baseline = write_bench(tmp_path, "base.json", [entry])
        current = write_bench(tmp_path, "cur.json", [run_entry(100.0)])
        rc = bench_delta.main([baseline, current, "--gate", "20"])
        assert rc == 0
        assert "missing — skipped" in capsys.readouterr().out


class TestGate:
    def test_within_budget_passes(self, tmp_path):
        baseline = write_bench(tmp_path, "base.json", [run_entry(100.0)])
        current = write_bench(tmp_path, "cur.json", [run_entry(90.0)])
        assert bench_delta.main([baseline, current, "--gate", "20"]) == 0

    def test_regression_past_budget_fails(self, tmp_path, capsys):
        baseline = write_bench(tmp_path, "base.json", [run_entry(100.0)])
        current = write_bench(tmp_path, "cur.json", [run_entry(70.0)])
        assert bench_delta.main([baseline, current, "--gate", "20"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_improvement_passes(self, tmp_path):
        baseline = write_bench(tmp_path, "base.json", [run_entry(100.0)])
        current = write_bench(tmp_path, "cur.json", [run_entry(200.0)])
        assert bench_delta.main([baseline, current, "--gate", "20"]) == 0

    def test_without_gate_output_is_informational(self, tmp_path, capsys):
        baseline = write_bench(tmp_path, "base.json", [run_entry(100.0)])
        current = write_bench(tmp_path, "cur.json", [run_entry(1.0)])
        assert bench_delta.main([baseline, current]) == 0
        out = capsys.readouterr().out
        assert "| overlay_vanilla_bg300k |" in out

    def test_latest_run_is_compared(self, tmp_path):
        baseline = write_bench(tmp_path, "base.json",
                               [run_entry(1.0), run_entry(100.0)])
        current = write_bench(tmp_path, "cur.json", [run_entry(95.0)])
        assert bench_delta.main([baseline, current, "--gate", "20"]) == 0


def test_check_artifacts_detects_patterns_and_size(tmp_path):
    """The artifact-hygiene checker flags tracked traces and huge files."""
    spec = importlib.util.spec_from_file_location(
        "check_artifacts",
        Path(__file__).resolve().parents[1] / ".github" /
        "check_artifacts.py")
    check_artifacts = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(check_artifacts)

    import subprocess
    subprocess.run(["git", "init", "-q", str(tmp_path)], check=True)
    (tmp_path / "ok.py").write_text("x = 1\n")
    (tmp_path / "bad.trace.json").write_text("{}")
    (tmp_path / "huge.txt").write_text("a" * 2048)
    subprocess.run(["git", "-C", str(tmp_path), "add", "-A"], check=True)

    problems = check_artifacts.check(root=str(tmp_path), max_bytes=1024)
    assert any("bad.trace.json" in p and "artifact pattern" in p
               for p in problems)
    assert any("huge.txt" in p and "exceeds" in p for p in problems)
    assert not any("ok.py" in p for p in problems)
