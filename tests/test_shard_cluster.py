"""Shard determinism, conservation, and windowed-execution contracts.

The space-parallel executor's one promise: *how* a cluster is executed
(shard count, in-process vs subprocess workers, window count) never
changes *what* it computes.  These tests pin that promise:

1. digests identical at ``shards=1/2/4`` (and subprocess == in-process);
2. exact cross-fabric packet conservation, loss-free and under faults,
   with per-host kernel :class:`PacketLedger` balance preserved;
3. back-to-back isolation (mirrors ``test_fastpath_golden``): two runs
   in one process are digest-identical;
4. the windowed :class:`ExperimentCell` path is byte-identical to the
   monolithic single-run engine — the single-shard ⇔ today's-engine
   equivalence the sharded machinery is built on.
"""

from __future__ import annotations

import pytest

from repro.bench.experiment import ExperimentConfig, run_experiment
from repro.bench.cell import ExperimentCell
from repro.bench.runner import result_digest
from repro.faults.plan import FaultPlan, PacketLoss
from repro.prism.mode import StackMode
from repro.shard import (
    ClusterConfig,
    HostCell,
    cluster_digest,
    partition_hosts,
    run_cluster,
)
from repro.sim.units import MS


def _small_cluster(**overrides) -> ClusterConfig:
    knobs = dict(hosts=4, users=200, duration_ns=8 * MS, warmup_ns=2 * MS,
                 timeout_ns=5 * MS)
    knobs.update(overrides)
    return ClusterConfig(**knobs)


# ----------------------------------------------------------------------
# Determinism across shard counts and worker backends
# ----------------------------------------------------------------------
def test_digest_identical_across_shard_counts():
    config = _small_cluster()
    digests = {
        shards: cluster_digest(run_cluster(config, shards=shards,
                                           processes=False))
        for shards in (1, 2, 4)}
    assert len(set(digests.values())) == 1, digests


def test_subprocess_workers_match_in_process():
    config = _small_cluster(hosts=3, users=120)
    in_process = run_cluster(config, shards=3, processes=False)
    subprocesses = run_cluster(config, shards=3, processes=True)
    assert cluster_digest(in_process) == cluster_digest(subprocesses)


def test_back_to_back_cluster_runs_are_identical():
    """No cross-run state leaks through the sharded path either."""
    config = _small_cluster(hosts=2, users=80)
    first = cluster_digest(run_cluster(config, shards=1))
    second = cluster_digest(run_cluster(config, shards=1))
    assert first == second


# ----------------------------------------------------------------------
# Exact conservation
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_cross_fabric_conservation_loss_free(shards):
    result = run_cluster(_small_cluster(), shards=shards, processes=False)
    c = result.conservation
    assert c["exact"]
    assert c["cross_sent"] == c["cross_routed"] + c["cross_in_flight_fabric"]
    assert (c["cross_injected"] + c["cross_pending_at_end"]
            == c["cross_delivered"])
    for cls in ("hi", "lo"):
        t = result.totals[cls]
        assert t["sent"] == t["replies"] + t["timed_out"] + t["outstanding"]
    # Loss-free run: no user ever had to give up on a request.
    assert result.totals["hi"]["timed_out"] == 0


@pytest.mark.parametrize("shards", [1, 2])
def test_conservation_under_faults(shards):
    plan = FaultPlan(losses=(PacketLoss(site="wire", p=0.05),))
    config = _small_cluster(hosts=3, users=150, faults=plan)
    result = run_cluster(config, shards=shards, processes=False)
    assert result.conservation["exact"]
    dropped = 0
    for host in result.hosts:
        report = host["conservation"]
        assert report["balanced"], report
        dropped += report["dropped"]
    assert dropped > 0, "5% wire loss dropped nothing — fault not installed"
    # Lost requests/replies surface as timeouts, and the ledgers still
    # balance exactly (credits reclaimed, no deadlocked users).
    timed_out = sum(result.totals[cls]["timed_out"] for cls in ("hi", "lo"))
    assert timed_out > 0


def test_faulty_run_digest_stable_across_shards():
    plan = FaultPlan(losses=(PacketLoss(site="wire", p=0.05),))
    config = _small_cluster(hosts=3, users=90, faults=plan)
    one = run_cluster(config, shards=1, processes=False)
    three = run_cluster(config, shards=3, processes=False)
    assert cluster_digest(one) == cluster_digest(three)


# ----------------------------------------------------------------------
# Windowed cell == monolithic engine (the shards=1 byte-identity basis)
# ----------------------------------------------------------------------
def test_windowed_experiment_cell_matches_monolithic_run():
    config = ExperimentConfig(
        mode=StackMode.VANILLA, network="overlay", fg_rate_pps=2_000,
        bg_rate_pps=120_000.0, duration_ns=12 * MS, warmup_ns=3 * MS)
    monolithic = result_digest(run_experiment(config))

    cell = ExperimentCell(config)
    horizon, step = 0, 50_000  # the cluster executor's default lookahead
    while horizon < cell.end_ns:
        horizon = min(horizon + step, cell.end_ns)
        cell.run_to(horizon)
    assert result_digest(cell.finalize()) == monolithic


# ----------------------------------------------------------------------
# Building blocks
# ----------------------------------------------------------------------
def test_partition_hosts_balanced_and_complete():
    assert partition_hosts(16, 4) == [[0, 1, 2, 3], [4, 5, 6, 7],
                                      [8, 9, 10, 11], [12, 13, 14, 15]]
    blocks = partition_hosts(5, 3)
    assert sorted(h for block in blocks for h in block) == list(range(5))
    assert max(len(b) for b in blocks) - min(len(b) for b in blocks) <= 1
    assert partition_hosts(2, 8) == [[0], [1]]  # never more shards than hosts


def test_lookahead_violation_is_detected():
    from repro.overlay.wirefmt import WirePacket

    cell = HostCell(_small_cluster(hosts=2, users=2), 0)
    cell.run_to(1 * MS)
    stale = WirePacket(src_host=1, dst_host=0, cls="hi", kind="req", seq=1,
                       departure_ns=0, arrival_ns=500_000,
                       payload_len=16, sent_at=0)
    with pytest.raises(RuntimeError, match="lookahead violation"):
        cell.deliver([stale])


def test_cluster_config_roundtrips_through_dict():
    plan = FaultPlan(losses=(PacketLoss(site="eth", p=0.01),))
    config = _small_cluster(mode=StackMode.PRISM_SYNC, faults=plan)
    assert ClusterConfig.from_dict(config.to_dict()) == config


def test_wire_format_roundtrip_and_ordering():
    from repro.overlay.wirefmt import (
        WirePacket, from_wire, to_wire, wire_sort_key)

    a = WirePacket(src_host=0, dst_host=1, cls="hi", kind="req", seq=7,
                   departure_ns=10, arrival_ns=60, payload_len=16, sent_at=10)
    b = WirePacket(src_host=1, dst_host=0, cls="lo", kind="reply", seq=3,
                   departure_ns=20, arrival_ns=60, payload_len=32, sent_at=5)
    assert from_wire(to_wire(a)) == a
    # Equal arrivals break ties on stable flow identity, src first.
    assert sorted([b, a], key=wire_sort_key) == [a, b]
    with pytest.raises(ValueError):
        from_wire(("bogus",))
