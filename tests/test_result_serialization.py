"""Versioned JSON serialization of configs and results.

These dicts are the disk cache's wire format (which used to be pickle):
the round trip must be *exact* — every float, enum, and nested frozen
config — or cache hits would silently perturb results.
"""

import dataclasses
import json

import pytest

from repro.bench.experiment import (
    SCHEMA_VERSION,
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
)
from repro.bench.runner import ResultCache, config_key, result_digest
from repro.kernel.config import KernelConfig
from repro.kernel.costs import CostModel
from repro.prism.mode import StackMode
from repro.sim.units import MS

FAST = dict(duration_ns=30 * MS, warmup_ns=10 * MS)

#: Exercises every special case: enum mode, nested frozen configs,
#: nested tuple-of-tuples (cstate_levels), non-integral floats.
FULL_CONFIG = ExperimentConfig(
    mode=StackMode.PRISM_SYNC, fg_rate_pps=1_234.5, bg_rate_pps=50_000,
    costs=CostModel().replace(hardirq_ns=777,
                              cstate_levels=((100, 500), (2_000, 9_000))),
    kernel_config=KernelConfig(napi_weight=16,
                               initial_mode=StackMode.PRISM_BATCH),
    **FAST)


class TestConfigRoundTrip:
    def test_json_round_trip_is_exact(self):
        wire = json.loads(json.dumps(FULL_CONFIG.to_dict()))
        restored = ExperimentConfig.from_dict(wire)
        assert restored == FULL_CONFIG
        assert config_key(restored) == config_key(FULL_CONFIG)
        # Type fidelity where JSON is lossy by default:
        assert restored.mode is StackMode.PRISM_SYNC
        assert restored.kernel_config.initial_mode is StackMode.PRISM_BATCH
        assert restored.costs.cstate_levels == ((100, 500), (2_000, 9_000))
        assert isinstance(restored.costs.cstate_levels[0], tuple)

    def test_default_config_round_trip(self):
        config = ExperimentConfig()
        assert ExperimentConfig.from_dict(
            json.loads(json.dumps(config.to_dict()))) == config

    def test_dict_carries_version(self):
        assert FULL_CONFIG.to_dict()["version"] == SCHEMA_VERSION

    def test_newer_schema_rejected(self):
        data = FULL_CONFIG.to_dict()
        data["version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            ExperimentConfig.from_dict(data)


class TestResultRoundTrip:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(ExperimentConfig(fg_rate_pps=2_000,
                                               bg_rate_pps=50_000, **FAST))

    def test_json_round_trip_is_digest_identical(self, result):
        wire = json.loads(json.dumps(result.to_dict()))
        restored = ExperimentResult.from_dict(wire)
        assert result_digest(restored) == result_digest(result)
        assert restored == result

    def test_latency_summary_survives(self, result):
        restored = ExperimentResult.from_dict(result.to_dict())
        assert restored.fg_latency == result.fg_latency
        assert restored.fg_samples_ns == result.fg_samples_ns

    def test_newer_schema_rejected(self, result):
        data = result.to_dict()
        data["version"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            ExperimentResult.from_dict(data)


class TestJsonCache:
    def test_cache_entries_are_json_files(self, tmp_path):
        config = ExperimentConfig(fg_rate_pps=2_000, **FAST)
        result = run_experiment(config)
        cache = ResultCache(tmp_path)
        cache.put(config, result)
        entries = list(tmp_path.glob("*.json"))
        assert len(entries) == 1
        with entries[0].open(encoding="utf-8") as fh:
            doc = json.load(fh)  # plain JSON, inspectable without pickle
        assert doc["version"] == SCHEMA_VERSION
        cached = cache.get(config)
        assert cached is not None
        assert result_digest(cached) == result_digest(result)

    def test_valid_json_wrong_shape_is_a_miss(self, tmp_path):
        config = ExperimentConfig(fg_rate_pps=2_000, **FAST)
        cache = ResultCache(tmp_path)
        cache.put(config, run_experiment(config))
        from repro.bench.runner import config_key as key
        cache._path(key(config)).write_text('{"version": 1}',
                                            encoding="utf-8")
        assert cache.get(config) is None

    def test_traced_result_round_trips_breakdown(self, tmp_path):
        """stage_breakdown (set by traced runs) survives the cache."""
        config = ExperimentConfig(fg_rate_pps=2_000, **FAST)
        result = run_experiment(config)
        result = dataclasses.replace(
            result, stage_breakdown={"version": 1, "path": ["eth"],
                                     "end_to_end_ns": 10.0, "packets": 1,
                                     "excluded": 0, "segments": []})
        restored = ExperimentResult.from_dict(
            json.loads(json.dumps(result.to_dict())))
        assert restored.stage_breakdown == result.stage_breakdown
