#!/usr/bin/env python3
"""Emit a markdown table comparing two BENCH_*.json files.

Usage: bench_delta.py <baseline.json> <current.json> [--gate PCT]

Compares the most recent run in each file workload-by-workload and
prints GitHub-flavoured markdown (intended for $GITHUB_STEP_SUMMARY).
Handles the engine files (``events_per_sec``), the packet-path files
(``packets_per_sec``) and the fabric/shard files (``replies_per_sec``);
the per-workload metric is detected from the data.  Suite-level
determinism booleans (``digests_identical``, ``conservation_exact``)
are asserted whenever recorded — those fail the job even without
``--gate``.

Without ``--gate`` the output is informational only — CI perf boxes are
too noisy to gate tightly; the enforced 3% budget is checked on
dedicated hardware instead.  With ``--gate PCT`` the script exits
non-zero when the canonical headline metric regressed by more than
PCT percent — a wide tripwire for "someone deoptimized the hot path",
not a precision benchmark.

When both runs recorded repeated-run samples
(``canonical_<metric>_samples``, three or more each), the gate upgrades
to a statistical test in the spirit of PASTRAMI: compare *medians* and
fail only when the regression also makes the two runs statistically
distinguishable — the current run's inter-quartile range lies entirely
below the baseline's.  A median drop whose IQRs still overlap is
reported as within measurement noise and does not fail the job.  Runs
without samples (older BENCH files, ``repeats=1``) fall back to the
single-number gate unchanged.
"""

import argparse
import json
import sys

#: Per-workload throughput keys, in detection order.
METRIC_KEYS = ("events_per_sec", "packets_per_sec", "replies_per_sec")

#: Suite-level determinism booleans (the shard and fabric suites record
#: them).  A run that carries one must carry it *true*: a throughput
#: number earned by changing the simulation's answer is a correctness
#: bug wearing a perf costume, so these fail the job even without
#: ``--gate``.
IDENTITY_KEYS = ("digests_identical", "conservation_exact")


def latest_run(path):
    """The most recent run in *path*, or None (with a warning) when the
    file is absent, unreadable, or empty.

    A missing/empty baseline is normal on a fresh branch or when the
    seed repo never ran the bench — the comparison is skipped, never
    a traceback."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        print(f"warning: {path}: not found — comparison skipped")
        return None
    except json.JSONDecodeError as exc:
        print(f"warning: {path}: not valid JSON ({exc}) — "
              "comparison skipped")
        return None
    runs = doc.get("runs") or []
    if not runs:
        print(f"warning: {path}: no runs recorded — comparison skipped")
        return None
    return runs[-1]


def detect_metric(*runs):
    """The per-workload throughput key used by these runs (or None)."""
    for run in runs:
        for stats in run.get("workloads", {}).values():
            for key in METRIC_KEYS:
                if key in stats:
                    return key
    print("warning: no known throughput metric in either file "
          f"(looked for {', '.join(METRIC_KEYS)}) — comparison skipped")
    return None


def print_table(baseline, current, metric):
    unit = metric.replace("_per_sec", "/s").replace("events", "ev")
    unit = unit.replace("packets", "pkt").replace("replies", "rep")
    if "packets" in metric:
        suite = "Packet-path"
    elif "replies" in metric:
        # The shard and fabric suites share the replies/s metric; the
        # canonical workload name tells them apart.
        canonical = str(baseline.get("canonical")
                        or current.get("canonical") or "")
        suite = "Shard scaling" if canonical.startswith("cluster") \
            else "Fabric"
    else:
        suite = "Engine"
    print(f"### {suite} benchmark vs committed baseline")
    print()
    print(f"baseline: `{baseline.get('label', '?')}` "
          f"({baseline.get('timestamp', '?')}, "
          f"quick={baseline.get('quick')}) — "
          f"current: `{current.get('label', '?')}` "
          f"(quick={current.get('quick')})")
    print()
    print(f"| workload | baseline {unit} | current {unit} | delta |")
    print("|---|---:|---:|---:|")
    base_wl = baseline.get("workloads", {})
    cur_wl = current.get("workloads", {})

    def fmt(stats):
        # Suites that record repeated-run samples per workload (the
        # fabric file does) get an (n=...) marker so the reader knows
        # the number shown is a median, not a singleton.
        value = stats.get(metric)
        if not value:
            return "—"
        samples = stats.get(metric + "_samples")
        if isinstance(samples, list) and len(samples) >= 2:
            return f"{value:,.0f} (n={len(samples)})"
        return f"{value:,.0f}"

    for name in sorted(set(base_wl) | set(cur_wl)):
        old = base_wl.get(name, {}).get(metric)
        new = cur_wl.get(name, {}).get(metric)
        if old and new:
            delta = f"{(new - old) / old * 100:+.1f}%"
        else:
            delta = "n/a"
        print(f"| {name} | {fmt(base_wl.get(name, {}))} "
              f"| {fmt(cur_wl.get(name, {}))} | {delta} |")
    print()
    print("_Different machines (CI runner vs baseline box): deltas are "
          "informational; only the wide `--gate` tripwire fails the job._")


def check_identity(run, label):
    """Non-zero when a recorded determinism boolean is false."""
    failures = 0
    for key in IDENTITY_KEYS:
        value = run.get(key)
        if value is None:
            continue
        if value:
            print(f"identity: {label} `{key}` ok")
        else:
            print(f"**FAIL: {label} run recorded `{key}: false` — "
                  f"results differ across shard counts or the books "
                  f"don't balance**")
            failures += 1
    return failures


def quartiles(samples):
    """(q1, median, q3) with linear interpolation."""
    ordered = sorted(samples)
    n = len(ordered)

    def q(p):
        k = (n - 1) * p
        lo = int(k)
        hi = min(lo + 1, n - 1)
        return ordered[lo] + (ordered[hi] - ordered[lo]) * (k - lo)

    return q(0.25), q(0.5), q(0.75)


def check_gate_statistical(baseline, current, metric, gate_pct):
    """Median + IQR-overlap gate over repeated-run samples.

    Returns None when either run lacks enough samples (caller falls back
    to the single-number gate), else the process exit code.
    """
    key = "canonical_" + metric + "_samples"
    old_samples = baseline.get(key)
    new_samples = current.get(key)
    if not (isinstance(old_samples, list) and isinstance(new_samples, list)
            and len(old_samples) >= 3 and len(new_samples) >= 3):
        return None
    old_q1, old_med, old_q3 = quartiles(old_samples)
    new_q1, new_med, new_q3 = quartiles(new_samples)
    delta_pct = (new_med - old_med) / old_med * 100 if old_med else 0.0
    print()
    print(f"gate (statistical): canonical `{baseline.get('canonical', '?')}` "
          f"median {old_med:,.0f} [IQR {old_q1:,.0f}–{old_q3:,.0f}, "
          f"n={len(old_samples)}] -> {new_med:,.0f} "
          f"[IQR {new_q1:,.0f}–{new_q3:,.0f}, n={len(new_samples)}] "
          f"({delta_pct:+.1f}%, budget -{gate_pct:.0f}%)")
    regressed = delta_pct < -gate_pct
    distinguishable = new_q3 < old_q1  # IQRs disjoint, current below
    if regressed and distinguishable:
        print(f"**FAIL: median regressed {-delta_pct:.1f}% and the runs "
              f"are statistically distinguishable (disjoint IQRs)**")
        return 1
    if regressed:
        print(f"median regressed {-delta_pct:.1f}% but the IQRs overlap — "
              "within measurement noise, not gated")
    return 0


def check_gate(baseline, current, metric, gate_pct):
    """Non-zero exit when the canonical headline regressed past the gate."""
    statistical = check_gate_statistical(baseline, current, metric, gate_pct)
    if statistical is not None:
        return statistical
    headline = "canonical_" + metric
    old = baseline.get(headline)
    new = current.get(headline)
    if not isinstance(old, (int, float)) or not isinstance(new, (int, float)):
        print(f"gate: headline `{headline}` missing — skipped")
        return 0
    if not old:
        print("gate: baseline headline is zero — skipped")
        return 0
    delta_pct = (new - old) / old * 100
    print()
    print(f"gate: canonical `{baseline.get('canonical', '?')}` "
          f"{old:,.0f} -> {new:,.0f} ({delta_pct:+.1f}%, "
          f"budget -{gate_pct:.0f}%)")
    if delta_pct < -gate_pct:
        print(f"**FAIL: canonical metric regressed {-delta_pct:.1f}% "
              f"(> {gate_pct:.0f}% budget)**")
        return 1
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--gate", type=float, metavar="PCT", default=None,
                        help="fail when the canonical headline metric "
                             "regressed by more than PCT percent")
    args = parser.parse_args(argv)

    baseline = latest_run(args.baseline)
    current = latest_run(args.current)
    if baseline is None or current is None:
        return 0
    metric = detect_metric(baseline, current)
    if metric is None:
        return 0
    print_table(baseline, current, metric)
    print()
    identity_failures = (check_identity(baseline, "baseline")
                         + check_identity(current, "current"))
    if args.gate is not None:
        gate = check_gate(baseline, current, metric, args.gate)
        return gate or (1 if identity_failures else 0)
    return 1 if identity_failures else 0


if __name__ == "__main__":
    sys.exit(main())
