#!/usr/bin/env python3
"""Emit a markdown table comparing two BENCH_engine.json files.

Usage: bench_delta.py <baseline.json> <current.json>

Compares the most recent run in each file workload-by-workload and
prints GitHub-flavoured markdown (intended for $GITHUB_STEP_SUMMARY).
Informational only — CI perf boxes are too noisy to gate on; the
enforced 3% budget is checked on dedicated hardware instead.
"""

import json
import sys


def latest_run(path):
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    runs = doc.get("runs") or []
    if not runs:
        raise SystemExit(f"{path}: no runs recorded")
    return runs[-1]


def main(argv):
    if len(argv) != 3:
        raise SystemExit(__doc__)
    baseline = latest_run(argv[1])
    current = latest_run(argv[2])

    print("### Engine microbenchmark vs committed baseline")
    print()
    print(f"baseline: `{baseline.get('label', '?')}` "
          f"({baseline.get('timestamp', '?')}, "
          f"quick={baseline.get('quick')}) — "
          f"current: `{current.get('label', '?')}` "
          f"(quick={current.get('quick')})")
    print()
    print("| workload | baseline ev/s | current ev/s | delta |")
    print("|---|---:|---:|---:|")
    base_wl = baseline.get("workloads", {})
    cur_wl = current.get("workloads", {})
    for name in sorted(set(base_wl) | set(cur_wl)):
        old = base_wl.get(name, {}).get("events_per_sec")
        new = cur_wl.get(name, {}).get("events_per_sec")
        if old and new:
            delta = f"{(new - old) / old * 100:+.1f}%"
        else:
            delta = "n/a"
        fmt = lambda v: f"{v:,.0f}" if v else "—"
        print(f"| {name} | {fmt(old)} | {fmt(new)} | {delta} |")
    print()
    print("_Different machines (CI runner vs baseline box): deltas are "
          "informational, not a gate._")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
