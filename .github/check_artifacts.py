#!/usr/bin/env python3
"""Fail CI when a generated artifact sneaks into the git index.

Usage: check_artifacts.py [--max-bytes N]

Two checks over ``git ls-files`` (tracked files only — the working tree
may legitimately hold generated output):

1. **Artifact patterns** — trace/telemetry output (``*.trace.json``,
   ``*.prom``, ``*.folded``, ``*.speedscope.json``, ``*.metrics.json``,
   ``*.pstats``) and flow-record stores (``*.sqlite``, ``*.jsonl``)
   must never be committed; they are regenerated on demand
   and bloat history (the repo once carried a stray 14 MB trace dump).
2. **Size cap** — any tracked file above ``--max-bytes`` (default 1 MB)
   fails; committed inputs in this repo are all text and small.
"""

import argparse
import fnmatch
import os
import subprocess
import sys

#: Glob patterns of generated artifacts that must never be tracked.
ARTIFACT_PATTERNS = (
    "*.trace.json",
    "*.prom",
    "*.folded",
    "*.speedscope.json",
    "*.metrics.json",
    "*.pstats",
    "trace-smoke.json",
    "*.report.json",
    "fault-smoke.json",
    # Flow-record stores (repro.flows sinks) are regenerated from any
    # run with --flows; a committed one is always a stray export.
    "*.sqlite",
    "*.jsonl",
)

DEFAULT_MAX_BYTES = 1024 * 1024


def tracked_files(root="."):
    out = subprocess.run(["git", "ls-files", "-z"], cwd=root, check=True,
                         capture_output=True).stdout
    return [p.decode() for p in out.split(b"\0") if p]


def check(root=".", max_bytes=DEFAULT_MAX_BYTES):
    """Return a list of violation messages (empty when clean)."""
    problems = []
    for path in tracked_files(root):
        name = os.path.basename(path)
        for pattern in ARTIFACT_PATTERNS:
            if fnmatch.fnmatch(name, pattern):
                problems.append(
                    f"{path}: matches artifact pattern {pattern!r} — "
                    "generated output must not be committed")
                break
        full = os.path.join(root, path)
        try:
            size = os.path.getsize(full)
        except OSError:
            continue  # deleted in worktree but still indexed — size n/a
        if size > max_bytes:
            problems.append(
                f"{path}: {size:,} bytes exceeds the "
                f"{max_bytes:,}-byte cap for committed files")
    return problems


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--max-bytes", type=int, default=DEFAULT_MAX_BYTES,
                        help="size cap for tracked files (default: 1 MiB)")
    args = parser.parse_args(argv)
    problems = check(max_bytes=args.max_bytes)
    for problem in problems:
        print(f"ERROR: {problem}", file=sys.stderr)
    if problems:
        print(f"\n{len(problems)} artifact-hygiene violation(s); "
              "remove the file(s) or extend .gitignore", file=sys.stderr)
        return 1
    print("artifact hygiene OK: no committed trace artifacts, "
          f"all tracked files under {args.max_bytes:,} bytes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
